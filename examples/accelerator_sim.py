"""The co-design story end to end: trace a registration's KD-tree
searches and replay them on the Tigris accelerator model vs CPU/GPU.

Reproduces the flavour of paper Fig. 11 on one frame pair: the same
search workload runs as Base-KD / Base-2SKD (GPU), CPU, Acc-KD /
Acc-2SKD (accelerator), and approximate Acc-2SKD — printing speedups,
power, and the energy breakdown.

Run:  python examples/accelerator_sim.py
"""

from repro.accel import (
    AcceleratorConfig,
    CPUModel,
    GPUModel,
    TigrisSimulator,
    estimate_area,
    registration_workload,
)
from repro.core import ApproximateSearchConfig
from repro.io import make_sequence


def total_time(model, workloads):
    return sum(model.run(w).time_seconds for w in workloads.values())


def main():
    sequence = make_sequence(n_frames=2, seed=3)
    source, target, _ = sequence.pair(0)
    print(f"frames: {len(source)} / {len(target)} points")

    # Trace the dense KD-tree searches of one registration pass
    # (NE radius searches + RPCE NN searches across ICP iterations).
    print("\ntracing workloads (functional two-stage search)...")
    two_stage = registration_workload(
        source.points, target.points,
        normal_radius=0.75, icp_iterations=5, leaf_size=128,
    )
    canonical = registration_workload(
        source.points, target.points,
        normal_radius=0.75, icp_iterations=5, leaf_size=1,
    )
    approximate = registration_workload(
        source.points, target.points,
        normal_radius=0.75, icp_iterations=5, leaf_size=128,
        approx=ApproximateSearchConfig(),
    )
    nodes_2s = sum(w.total_nodes_visited for w in two_stage.values())
    nodes_kd = sum(w.total_nodes_visited for w in canonical.values())
    print(f"two-stage node visits: {nodes_2s:,} "
          f"(redundancy {nodes_2s / nodes_kd:.1f}x over canonical — Fig. 6)")

    # Platforms.
    simulator = TigrisSimulator()
    cpu, gpu = CPUModel(), GPUModel()
    acc_2skd = simulator.simulate_many(list(two_stage.values()))
    acc_kd = simulator.simulate_many(list(canonical.values()))
    acc_approx = simulator.simulate_many(list(approximate.values()))
    base_kd = total_time(gpu, canonical)
    base_2skd = total_time(gpu, two_stage)
    cpu_time = total_time(cpu, canonical)

    print(f"\n{'platform':<26}{'time':>12}{'power':>9}")
    rows = [
        ("CPU (canonical KD)", cpu_time, cpu.power_watts),
        ("GPU Base-KD", base_kd, gpu.power_watts),
        ("GPU Base-2SKD", base_2skd, gpu.power_watts),
        ("Tigris Acc-KD", acc_kd.time_seconds, acc_kd.power_watts),
        ("Tigris Acc-2SKD", acc_2skd.time_seconds, acc_2skd.power_watts),
        ("Tigris Acc-2SKD approx", acc_approx.time_seconds, acc_approx.power_watts),
    ]
    for name, seconds, watts in rows:
        print(f"{name:<26}{seconds * 1e3:>10.3f}ms{watts:>8.1f}W")

    print("\nheadline comparisons (paper Sec. 6.3 anchors):")
    print(f"  Acc-2SKD vs Base-2SKD speedup: "
          f"{base_2skd / acc_2skd.time_seconds:.1f}x   (paper: 77.2x)")
    print(f"  power reduction vs GPU:        "
          f"{gpu.power_watts / acc_2skd.power_watts:.1f}x   (paper: 7.4x)")
    print(f"  Base-KD / Base-2SKD:           "
          f"{base_kd / base_2skd:.2f}x   (paper: 1.28x)")
    print(f"  approx vs exact on Tigris:     "
          f"{acc_2skd.time_seconds / acc_approx.time_seconds:.2f}x faster")

    print("\nenergy breakdown (Acc-2SKD; paper DP4: PE 53.7% / read 34.8% "
          "/ write 8.0% / leak 3.3% / DRAM 0.2%):")
    for category, fraction in acc_2skd.energy.fractions().items():
        print(f"  {category:<10} {100 * fraction:5.1f} %")

    area = estimate_area(AcceleratorConfig())
    print(f"\narea (Sec. 6.2): {area.sram_mm2:.2f} mm^2 SRAM + "
          f"{area.logic_mm2:.2f} mm^2 logic "
          f"({100 * area.sram_fraction:.1f}% / {100 * area.logic_fraction:.1f}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
