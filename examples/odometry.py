"""LiDAR odometry over a synthetic sequence (paper Sec. 2.2's motivating
application).

A vehicle drives through a synthetic urban scene; consecutive frames are
registered and the relative transforms chained into a trajectory, which
is scored with the KITTI odometry metrics (translational % and
rotational deg/m) — the exact accuracy setup of the paper's evaluation.

Frames flow through the streaming engine by default: each frame is
preprocessed once into a FrameState and handed from "source of pair k"
to "target of pair k+1", so the steady-state per-pair cost is one
preprocess plus one match.  ``--pairwise`` switches to the uncached
pair-by-pair driver (bit-identical trajectory, roughly twice the
per-frame preprocessing).

Run:  python examples/odometry.py [--frames N] [--dense] [--pairwise]
                                  [--trace out.json]

``--trace out.json`` records the run through the telemetry layer and
writes a Chrome trace (Perfetto / ``chrome://tracing``; a ``.jsonl``
path gets the flat run record) — one span per pair with the pipeline
stages nested inside.
"""

import argparse

import numpy as np

from repro.geometry import metrics, se3
from repro.io import default_test_model, make_sequence
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    run_odometry,
    run_streaming_odometry,
)
from repro.telemetry import Tracer, write_trace


def build_pipeline() -> Pipeline:
    """Point-to-plane ICP seeded by the previous frame's motion."""
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(method="uniform", params={"voxel_size": 3.0}),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=30,
            ),
            skip_initial_estimation=True,
        )
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=5)
    parser.add_argument(
        "--dense",
        action="store_true",
        help="use a 32x360 scan pattern (slower, much more accurate)",
    )
    parser.add_argument(
        "--pairwise",
        action="store_true",
        help="use the uncached pair-by-pair driver instead of streaming",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace (or .jsonl run record) of the run",
    )
    args = parser.parse_args()

    model = (
        default_test_model(azimuth_steps=360, channels=32)
        if args.dense
        else default_test_model()
    )
    sequence = make_sequence(
        n_frames=args.frames, seed=7, step=1.0, yaw_rate=0.01, model=model
    )
    print(
        f"sequence: {len(sequence)} frames, "
        f"~{len(sequence.frames[0])} points each"
    )

    # Both drivers register all consecutive pairs with a constant-
    # velocity prior and score against ground truth; the streaming one
    # preprocesses each frame once and reuses it across pairs.
    if args.pairwise:
        driver, label = run_odometry, "pair-by-pair (uncached)"
    else:
        driver, label = run_streaming_odometry, "streaming (artifact reuse)"
    print(f"driver: {label}")
    tracer = Tracer() if args.trace else None
    result = driver(sequence, build_pipeline(), tracer=tracer)
    for index, (pair, seconds) in enumerate(
        zip(result.pair_results, result.pair_seconds)
    ):
        translation = se3.translation_part(pair.transformation)
        print(
            f"frame {index + 1:2d}: {seconds:5.2f}s  "
            f"t = {np.round(translation, 3)}  {pair.icp}"
        )

    print("\nKITTI-style sequence errors (paper Fig. 3 axes):")
    print(f"  translational: {result.errors.translational_percent:.2f} %")
    print(f"  rotational:    {result.errors.rotational:.4f} deg/m")

    # Anchor the estimated trajectory (which starts at the identity) at
    # the ground-truth start pose before comparing absolute positions.
    final_gt = se3.translation_part(sequence.poses[-1])
    final_est = se3.translation_part(
        se3.compose(sequence.poses[0], result.trajectory[-1])
    )
    travelled = metrics.trajectory_distances(sequence.poses)[-1]
    print(
        f"  final position error: {np.linalg.norm(final_gt - final_est):.3f} m "
        f"over {travelled:.1f} m travelled"
    )
    if args.trace:
        write_trace(tracer, args.trace)
        print(f"wrote trace {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
