"""Unit tests for the hierarchical stage profiler."""

import time

import pytest

from repro.profiling import StageProfiler


class TestStages:
    def test_stage_accumulates_time(self):
        profiler = StageProfiler()
        with profiler.stage("work"):
            time.sleep(0.002)
        assert profiler.stages["work"].total >= 0.002
        assert profiler.stages["work"].calls == 1

    def test_repeated_stages_accumulate(self):
        profiler = StageProfiler()
        for _ in range(3):
            with profiler.stage("loop"):
                pass
        assert profiler.stages["loop"].calls == 3

    def test_nested_stages_rejected(self):
        profiler = StageProfiler()
        with pytest.raises(RuntimeError):
            with profiler.stage("outer"):
                with profiler.stage("inner"):
                    pass

    def test_stage_closes_on_exception(self):
        profiler = StageProfiler()
        with pytest.raises(ValueError):
            with profiler.stage("failing"):
                raise ValueError("boom")
        # The stage must have closed; a new one can open.
        with profiler.stage("next"):
            pass


class TestCharges:
    def test_search_charged_to_active_stage(self):
        profiler = StageProfiler()
        with profiler.stage("RPCE"):
            profiler.charge_search(0.5)
            profiler.charge_construction(0.1)
        timing = profiler.stages["RPCE"]
        assert timing.kdtree_search == pytest.approx(0.5)
        assert timing.kdtree_construction == pytest.approx(0.1)

    def test_charge_without_stage_is_noop(self):
        profiler = StageProfiler()
        profiler.charge_search(1.0)  # silently ignored: no stage open
        assert profiler.total_kdtree_search == 0.0

    def test_other_time_never_negative(self):
        profiler = StageProfiler()
        with profiler.stage("s"):
            profiler.charge_search(100.0)  # charge exceeds wall time
        assert profiler.stages["s"].other == 0.0


class TestAggregation:
    def test_fractions_sum_to_one(self):
        profiler = StageProfiler()
        with profiler.stage("a"):
            time.sleep(0.001)
        with profiler.stage("b"):
            time.sleep(0.002)
        assert sum(profiler.stage_fractions().values()) == pytest.approx(1.0)

    def test_kdtree_fractions_partition(self):
        profiler = StageProfiler()
        with profiler.stage("a"):
            time.sleep(0.002)
            profiler.charge_search(0.001)
        fractions = profiler.kdtree_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["search"] > 0

    def test_empty_profiler(self):
        profiler = StageProfiler()
        assert profiler.total == 0.0
        assert profiler.stage_fractions() == {}
        assert profiler.kdtree_fractions()["search"] == 0.0

    def test_merge(self):
        a = StageProfiler()
        with a.stage("x"):
            a.charge_search(0.2)
        b = StageProfiler()
        with b.stage("x"):
            b.charge_search(0.3)
        with b.stage("y"):
            pass
        a.merge(b)
        assert a.stages["x"].kdtree_search == pytest.approx(0.5)
        assert "y" in a.stages

    def test_merge_restricted_to_named_stages(self):
        a = StageProfiler()
        b = StageProfiler()
        with b.stage("x"):
            b.charge_search(0.3)
        with b.stage("y"):
            pass
        with b.stage("z"):
            pass
        a.merge(b, stages=("x", "z"))
        assert set(a.stages) == {"x", "z"}
        assert a.stages["x"].kdtree_search == pytest.approx(0.3)
        assert a.stages["x"].calls == 1

    def test_merge_accumulates_calls(self):
        a = StageProfiler()
        with a.stage("x"):
            pass
        b = StageProfiler()
        for _ in range(2):
            with b.stage("x"):
                pass
        a.merge(b)
        assert a.stages["x"].calls == 3

    def test_report_format(self):
        profiler = StageProfiler()
        with profiler.stage("Normal Estimation"):
            pass
        text = profiler.report()
        assert "Normal Estimation" in text
        assert "TOTAL" in text


class TestReportFormatting:
    def make_profiler(self) -> StageProfiler:
        profiler = StageProfiler()
        with profiler.stage("RPCE"):
            profiler.charge_search(0.0)
        return profiler

    def test_basic_report_has_no_extended_columns(self):
        text = self.make_profiler().report()
        header = text.splitlines()[0]
        assert "kd-search" in header
        assert "other" not in header
        assert "share" not in header

    def test_extended_report_columns_and_shares(self):
        text = self.make_profiler().report(extended=True)
        lines = text.splitlines()
        assert "other" in lines[0] and "share" in lines[0]
        # One stage -> its share and the TOTAL share are both 100%.
        assert lines[1].startswith("RPCE")
        assert lines[1].rstrip().endswith("100.0%")
        assert lines[-1].startswith("TOTAL")
        assert lines[-1].rstrip().endswith("100.0%")

    def test_extended_report_on_empty_profiler(self):
        # No stages recorded: the footer must print 0.0%, not divide
        # by the zero total.
        text = StageProfiler().report(extended=True)
        lines = text.splitlines()
        assert len(lines) == 2  # header + TOTAL only
        assert lines[-1].startswith("TOTAL")
        assert lines[-1].rstrip().endswith("0.0%")

    def test_extended_report_search_stats_line(self):
        from repro.kdtree import SearchStats

        stats = SearchStats(
            queries=10, csr_results=4, reused_queries=3, cache_hits=2
        )
        text = self.make_profiler().report(extended=True, search_stats=stats)
        last = text.splitlines()[-1]
        assert last == "queries: 10 (csr 4, reused 3, cache hits 2)"

    def test_search_stats_ignored_without_extended(self):
        from repro.kdtree import SearchStats

        text = self.make_profiler().report(
            search_stats=SearchStats(queries=10)
        )
        assert "queries:" not in text

    def test_rows_sorted_by_descending_total(self):
        profiler = StageProfiler()
        with profiler.stage("quick"):
            pass
        with profiler.stage("slow"):
            import time

            time.sleep(0.002)
        lines = profiler.report().splitlines()
        assert lines[1].startswith("slow")
        assert lines[2].startswith("quick")
