"""Tests for the ASCII plotting helpers."""

from repro.profiling import bar_chart, line_plot, scatter_plot


class TestScatter:
    def test_markers_and_legend(self):
        text = scatter_plot(
            [(1.0, 2.0, "DP1"), (3.0, 1.0, "DP7")],
            x_label="time",
            y_label="error",
        )
        assert "D" in text
        assert "legend" in text
        assert "time" in text and "error" in text

    def test_empty(self):
        assert scatter_plot([]) == "(no data)"

    def test_single_point(self):
        text = scatter_plot([(1.0, 1.0, "x")])
        assert "x" in text

    def test_collisions_marked(self):
        text = scatter_plot([(1.0, 1.0, "a"), (1.0, 1.0, "b"), (5, 5, "c")])
        assert "+" in text


class TestLine:
    def test_curve_renders(self):
        xs = list(range(10))
        ys = [x * x for x in xs]
        text = line_plot(xs, ys, x_label="h", y_label="t")
        assert text.count("*") >= 5
        assert "h (" in text

    def test_log_scale(self):
        text = line_plot([1, 2, 3], [1, 100, 10000], log_y=True, y_label="t")
        assert "log10(t)" in text

    def test_mismatched_lengths(self):
        assert line_plot([1, 2], [1]) == "(no data)"


class TestBars:
    def test_scaling(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text
