"""Unit tests for the canonical KD-tree: construction and queries."""

import numpy as np
import pytest

from repro.kdtree import KDTree, SearchStats, bruteforce


@pytest.fixture
def points(rng):
    return rng.normal(size=(300, 3))


@pytest.fixture
def tree(points):
    return KDTree(points)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            KDTree(np.arange(10.0))

    def test_rejects_nan(self):
        points = np.zeros((4, 3))
        points[2, 1] = np.nan
        with pytest.raises(ValueError):
            KDTree(points)

    def test_rejects_bad_split_rule(self, points):
        with pytest.raises(ValueError):
            KDTree(points, split_rule="bogus")

    def test_single_point(self):
        tree = KDTree(np.array([[1.0, 2.0, 3.0]]))
        assert tree.n == 1
        assert tree.height == 1
        idx, dist = tree.nn([1.0, 2.0, 3.0])
        assert idx == 0
        assert dist == pytest.approx(0.0)

    def test_balanced_height(self, points):
        tree = KDTree(points)
        # A median-split tree over n points has height ~log2(n).
        assert tree.height <= int(np.ceil(np.log2(len(points)))) + 2

    def test_copies_input(self, points):
        tree = KDTree(points)
        points[0, 0] = 1e9
        assert tree.points[0, 0] != 1e9

    def test_duplicate_points_handled(self):
        points = np.tile([1.0, 2.0, 3.0], (20, 1))
        tree = KDTree(points)
        idx, dist = tree.nn([1.0, 2.0, 3.0])
        assert dist == pytest.approx(0.0)
        indices, _ = tree.radius([1.0, 2.0, 3.0], 0.1)
        assert len(indices) == 20

    def test_cyclic_split_rule(self, points):
        tree = KDTree(points, split_rule="cyclic")
        query = points[0] + 0.01
        assert tree.nn(query)[0] == bruteforce.nn(points, query)[0]

    def test_high_dimensional(self, rng):
        features = rng.normal(size=(100, 33))
        tree = KDTree(features)
        query = rng.normal(size=33)
        assert tree.nn(query)[0] == bruteforce.nn(features, query)[0]

    def test_subtree_indices_cover_all(self, tree):
        indices = tree.subtree_point_indices(0)
        assert np.array_equal(indices, np.arange(tree.n))

    def test_repr(self, tree):
        text = repr(tree)
        assert "n=300" in text
        assert "widest" in text


class TestNN:
    def test_matches_bruteforce(self, tree, points, rng):
        for query in rng.normal(size=(40, 3)):
            idx, dist = tree.nn(query)
            bf_idx, bf_dist = bruteforce.nn(points, query)
            assert idx == bf_idx
            assert dist == pytest.approx(bf_dist)

    def test_query_on_data_point(self, tree, points):
        idx, dist = tree.nn(points[17])
        assert dist == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(points[idx], points[17])

    def test_rejects_dim_mismatch(self, tree):
        with pytest.raises(ValueError):
            tree.nn([1.0, 2.0])

    def test_rejects_nan_query(self, tree):
        with pytest.raises(ValueError):
            tree.nn([np.nan, 0.0, 0.0])

    def test_far_query(self, tree, points):
        query = np.array([1e4, 1e4, 1e4])
        idx, _ = tree.nn(query)
        assert idx == bruteforce.nn(points, query)[0]

    def test_batch_matches_single(self, tree, rng):
        queries = rng.normal(size=(10, 3))
        batch_idx, batch_dist = tree.nn_batch(queries)
        for i, query in enumerate(queries):
            idx, dist = tree.nn(query)
            assert batch_idx[i] == idx
            assert batch_dist[i] == pytest.approx(dist)


class TestKNN:
    def test_matches_bruteforce(self, tree, points, rng):
        for query in rng.normal(size=(15, 3)):
            indices, dists = tree.knn(query, 8)
            bf_indices, bf_dists = bruteforce.knn(points, query, 8)
            assert np.allclose(dists, bf_dists)
            assert set(indices) == set(bf_indices)

    def test_sorted_ascending(self, tree, rng):
        _, dists = tree.knn(rng.normal(size=3), 10)
        assert np.all(np.diff(dists) >= 0)

    def test_k_larger_than_n(self, tree):
        indices, dists = tree.knn(np.zeros(3), tree.n + 50)
        assert len(indices) == tree.n
        assert len(set(indices.tolist())) == tree.n

    def test_k_one_equals_nn(self, tree, rng):
        query = rng.normal(size=3)
        indices, dists = tree.knn(query, 1)
        nn_idx, nn_dist = tree.nn(query)
        assert indices[0] == nn_idx
        assert dists[0] == pytest.approx(nn_dist)

    def test_rejects_nonpositive_k(self, tree):
        with pytest.raises(ValueError):
            tree.knn(np.zeros(3), 0)


class TestRadius:
    def test_matches_bruteforce(self, tree, points, rng):
        for query in rng.normal(size=(15, 3)):
            indices, dists = tree.radius(query, 0.8)
            bf_indices, bf_dists = bruteforce.radius(points, query, 0.8)
            assert set(indices) == set(bf_indices)
            assert np.all(dists <= 0.8)

    def test_zero_radius(self, tree, points):
        indices, _ = tree.radius(points[5], 0.0)
        assert 5 in indices

    def test_huge_radius_returns_all(self, tree):
        indices, _ = tree.radius(np.zeros(3), 1e6)
        assert len(indices) == tree.n

    def test_sorted_option(self, tree, rng):
        _, dists = tree.radius(rng.normal(size=3), 1.0, sort=True)
        assert np.all(np.diff(dists) >= 0)

    def test_no_results(self, tree):
        indices, dists = tree.radius(np.array([1e5, 1e5, 1e5]), 0.5)
        assert len(indices) == 0
        assert len(dists) == 0

    def test_rejects_negative_radius(self, tree):
        with pytest.raises(ValueError):
            tree.radius(np.zeros(3), -1.0)

    def test_batch(self, tree, rng):
        queries = rng.normal(size=(5, 3))
        all_indices, all_dists = tree.radius_batch(queries, 0.7)
        assert len(all_indices) == 5
        for i, query in enumerate(queries):
            single, _ = tree.radius(query, 0.7)
            assert set(all_indices[i]) == set(single)


class TestStatsAccounting:
    def test_nn_charges_stats(self, tree, rng):
        stats = SearchStats()
        tree.nn(rng.normal(size=3), stats)
        assert stats.queries == 1
        assert stats.results_returned == 1
        assert 0 < stats.nodes_visited <= tree.n
        assert stats.traversal_steps >= stats.nodes_visited

    def test_pruning_happens(self, tree, rng):
        stats = SearchStats()
        for query in rng.normal(size=(10, 3)):
            tree.nn(query, stats)
        # NN search on 300 points should visit far fewer than all nodes.
        assert stats.nodes_visited < 10 * tree.n / 2
        assert stats.pruned_subtrees > 0

    def test_radius_results_counted(self, tree, rng):
        stats = SearchStats()
        indices, _ = tree.radius(rng.normal(size=3), 1.0, stats)
        assert stats.results_returned == len(indices)

    def test_knn_visits_bounded(self, tree, rng):
        stats = SearchStats()
        tree.knn(rng.normal(size=3), 5, stats)
        assert stats.nodes_visited <= tree.n
