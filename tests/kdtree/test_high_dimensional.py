"""High-dimensional search: the KPCE feature-space regime.

KPCE matches FPFH (33-d) and SHOT (352-d) descriptors by nearest
neighbor.  KD-trees degrade toward brute force as dimensionality grows
(every node gets visited), but must stay *correct* — these tests pin
both the correctness and the expected degradation.
"""

import numpy as np
import pytest

from repro.core import TwoStageKDTree
from repro.kdtree import KDTree, SearchStats, bruteforce


@pytest.fixture(scope="module")
def feature_sets():
    rng = np.random.default_rng(21)
    return {
        33: rng.normal(size=(150, 33)),
        352: rng.normal(size=(60, 352)),
    }


class TestCorrectness:
    @pytest.mark.parametrize("dim", [33, 352])
    def test_nn_matches_bruteforce(self, feature_sets, dim):
        features = feature_sets[dim]
        tree = KDTree(features)
        rng = np.random.default_rng(1)
        for query in rng.normal(size=(10, dim)):
            idx, dist = tree.nn(query)
            bf_idx, bf_dist = bruteforce.nn(features, query)
            assert idx == bf_idx
            assert dist == pytest.approx(bf_dist)

    @pytest.mark.parametrize("dim", [33, 352])
    def test_knn_matches_bruteforce(self, feature_sets, dim):
        features = feature_sets[dim]
        tree = KDTree(features)
        query = np.random.default_rng(2).normal(size=dim)
        _, dists = tree.knn(query, 5)
        _, bf_dists = bruteforce.knn(features, query, 5)
        assert np.allclose(dists, bf_dists)

    def test_two_stage_in_feature_space(self, feature_sets):
        features = feature_sets[33]
        tree = TwoStageKDTree.from_leaf_size(features, 16)
        query = np.random.default_rng(3).normal(size=33)
        _, dist = tree.nn(query)
        _, bf_dist = bruteforce.nn(features, query)
        assert dist == pytest.approx(bf_dist)

    def test_query_on_feature_returns_itself(self, feature_sets):
        features = feature_sets[33]
        tree = KDTree(features)
        idx, dist = tree.nn(features[7])
        assert idx == 7
        assert dist == pytest.approx(0.0, abs=1e-12)


class TestDegradation:
    def test_pruning_collapses_in_high_dimensions(self):
        """The curse of dimensionality: in 352-d the tree visits nearly
        every node — the reason KPCE may prefer the brute-force backend."""
        rng = np.random.default_rng(4)
        n = 100

        def visits(dim):
            points = rng.normal(size=(n, dim))
            tree = KDTree(points)
            stats = SearchStats()
            for query in rng.normal(size=(10, dim)):
                tree.nn(query, stats)
            return stats.nodes_visited / stats.queries

        low = visits(3)
        high = visits(352)
        assert high > 3 * low
        assert high > 0.8 * n  # nearly exhaustive
