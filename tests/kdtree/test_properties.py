"""Property-based tests: the KD-tree must agree with brute force on
arbitrary inputs, for every query type, split rule, and dimension."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kdtree import KDTree, SearchStats, bruteforce

# Clouds: 1-60 points in 1-5 dimensions, moderate magnitudes, possibly
# with duplicate coordinates (floats from a coarse grid encourage ties).
dims = st.integers(1, 5)


@st.composite
def cloud_and_queries(draw):
    ndim = draw(dims)
    n = draw(st.integers(1, 60))
    coarse = st.floats(-50, 50, allow_nan=False).map(lambda x: round(x, 1))
    points = draw(
        hnp.arrays(np.float64, (n, ndim), elements=coarse)
    )
    n_queries = draw(st.integers(1, 5))
    queries = draw(hnp.arrays(np.float64, (n_queries, ndim), elements=coarse))
    split_rule = draw(st.sampled_from(["widest", "cyclic"]))
    return points, queries, split_rule


@given(data=cloud_and_queries())
def test_nn_matches_bruteforce(data):
    points, queries, split_rule = data
    tree = KDTree(points, split_rule=split_rule)
    for query in queries:
        idx, dist = tree.nn(query)
        _, bf_dist = bruteforce.nn(points, query)
        # Ties on distance may legitimately return different indices.
        assert np.isclose(dist, bf_dist, atol=1e-9)
        assert np.isclose(np.linalg.norm(points[idx] - query), dist, atol=1e-9)


@given(data=cloud_and_queries(), k=st.integers(1, 10))
def test_knn_matches_bruteforce(data, k):
    points, queries, split_rule = data
    tree = KDTree(points, split_rule=split_rule)
    for query in queries:
        _, dists = tree.knn(query, k)
        _, bf_dists = bruteforce.knn(points, query, k)
        assert np.allclose(dists, bf_dists, atol=1e-9)


@given(data=cloud_and_queries(), radius=st.floats(0.0, 30.0, allow_nan=False))
def test_radius_matches_bruteforce(data, radius):
    points, queries, split_rule = data
    tree = KDTree(points, split_rule=split_rule)
    for query in queries:
        indices, dists = tree.radius(query, radius)
        bf_indices, _ = bruteforce.radius(points, query, radius)
        assert set(indices.tolist()) == set(bf_indices.tolist())
        assert np.all(dists <= radius + 1e-12)


@given(data=cloud_and_queries())
def test_knn_is_prefix_consistent(data):
    """The k-NN list must be a prefix of the (k+1)-NN list by distance."""
    points, queries, split_rule = data
    tree = KDTree(points, split_rule=split_rule)
    for query in queries:
        _, d3 = tree.knn(query, 3)
        _, d5 = tree.knn(query, 5)
        assert np.allclose(d5[: len(d3)], d3, atol=1e-12)


@given(data=cloud_and_queries())
def test_stats_conservation(data):
    """Visited + pruned traversal work is bounded by tree size per query."""
    points, queries, split_rule = data
    tree = KDTree(points, split_rule=split_rule)
    stats = SearchStats()
    for query in queries:
        tree.nn(query, stats)
    assert stats.queries == len(queries)
    assert stats.nodes_visited <= len(queries) * tree.n
    assert stats.traversal_steps >= stats.nodes_visited


@given(data=cloud_and_queries())
@settings(max_examples=15)
def test_radius_of_nn_dist_includes_nn(data):
    """Radius search at the NN distance must contain the NN itself."""
    points, queries, split_rule = data
    tree = KDTree(points, split_rule=split_rule)
    for query in queries:
        idx, dist = tree.nn(query)
        indices, _ = tree.radius(query, dist + 1e-9)
        assert idx in indices
