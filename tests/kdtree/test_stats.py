"""Unit tests for the SearchStats accumulator."""

from dataclasses import fields

from repro.kdtree import SearchStats


class TestSearchStats:
    def test_zero_initialized(self):
        stats = SearchStats()
        assert stats.nodes_visited == 0
        assert stats.queries == 0
        assert stats.nodes_per_query == 0.0
        assert stats.total_work == 0

    def test_merge_adds(self):
        a = SearchStats(nodes_visited=10, queries=2, leader_checks=3)
        b = SearchStats(nodes_visited=5, queries=1, pruned_subtrees=7)
        a.merge(b)
        assert a.nodes_visited == 15
        assert a.queries == 3
        assert a.leader_checks == 3
        assert a.pruned_subtrees == 7

    def test_reset(self):
        stats = SearchStats(nodes_visited=10, queries=2)
        stats.reset()
        assert stats.nodes_visited == 0
        assert stats.queries == 0

    def test_nodes_per_query(self):
        stats = SearchStats(nodes_visited=30, queries=3)
        assert stats.nodes_per_query == 10.0

    def test_total_work_includes_leader_checks(self):
        stats = SearchStats(nodes_visited=10, leader_checks=4)
        assert stats.total_work == 14

    def test_repr_readable(self):
        text = repr(SearchStats(nodes_visited=5, queries=1))
        assert "nodes_visited=5" in text
        assert "queries=1" in text


class TestFieldCoverage:
    """merge/reset/as_dict enumerate ``dataclasses.fields``, so every
    declared counter participates automatically — a newly added field
    cannot silently drop out of the accumulation protocol."""

    def everything_set(self, value: int) -> SearchStats:
        return SearchStats(**{f.name: value for f in fields(SearchStats)})

    def test_merge_covers_every_field(self):
        acc = self.everything_set(1)
        acc.merge(self.everything_set(2))
        assert all(value == 3 for value in acc.as_dict().values())

    def test_reset_covers_every_field(self):
        stats = self.everything_set(5)
        stats.reset()
        assert stats == SearchStats()

    def test_as_dict_covers_every_field(self):
        snapshot = self.everything_set(7).as_dict()
        assert set(snapshot) == {f.name for f in fields(SearchStats)}
        assert all(value == 7 for value in snapshot.values())
