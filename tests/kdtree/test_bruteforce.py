"""Unit tests for the brute-force reference search."""

import numpy as np
import pytest

from repro.kdtree import bruteforce


@pytest.fixture
def points(rng):
    return rng.normal(size=(80, 3))


class TestNN:
    def test_known_answer(self):
        points = np.array([[0, 0, 0], [1, 0, 0], [0, 2, 0]], dtype=float)
        idx, dist = bruteforce.nn(points, [0.9, 0.1, 0.0])
        assert idx == 1
        assert dist == pytest.approx(np.sqrt(0.01 + 0.01))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bruteforce.nn(np.empty((0, 3)), [0, 0, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            bruteforce.nn(np.zeros(5), [0])


class TestKNN:
    def test_sorted_and_exact(self, points):
        indices, dists = bruteforce.knn(points, np.zeros(3), 10)
        assert np.all(np.diff(dists) >= 0)
        full = np.linalg.norm(points, axis=1)
        assert np.allclose(dists, np.sort(full)[:10])
        assert len(set(indices.tolist())) == 10

    def test_k_caps_at_n(self, points):
        indices, _ = bruteforce.knn(points, np.zeros(3), 500)
        assert len(indices) == len(points)

    def test_k_must_be_positive(self, points):
        with pytest.raises(ValueError):
            bruteforce.knn(points, np.zeros(3), 0)


class TestRadius:
    def test_exact_membership(self, points):
        indices, dists = bruteforce.radius(points, np.zeros(3), 1.0)
        norms = np.linalg.norm(points, axis=1)
        expected = set(np.nonzero(norms <= 1.0)[0])
        assert set(indices) == expected
        assert np.all(dists <= 1.0)

    def test_sort_flag(self, points):
        _, dists = bruteforce.radius(points, np.zeros(3), 2.0, sort=True)
        assert np.all(np.diff(dists) >= 0)

    def test_negative_radius_rejected(self, points):
        with pytest.raises(ValueError):
            bruteforce.radius(points, np.zeros(3), -0.1)


class TestBatch:
    def test_nn_batch_matches_loop(self, points, rng):
        queries = rng.normal(size=(25, 3))
        indices, dists = bruteforce.nn_batch(points, queries)
        for i, query in enumerate(queries):
            idx, dist = bruteforce.nn(points, query)
            assert indices[i] == idx
            assert dists[i] == pytest.approx(dist)

    def test_pairwise_distances_symmetric_layout(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(6, 3))
        sq = bruteforce.pairwise_sq_distances(a, b)
        assert sq.shape == (4, 6)
        assert sq[1, 2] == pytest.approx(np.sum((a[1] - b[2]) ** 2))
