"""Property-based tests for ray-primitive intersections.

The strong invariant: whenever a primitive reports hit parameter ``t``,
the point ``origin + t * direction`` must lie on the primitive's
surface (within float tolerance).  This validates the vectorized
intersection algebra for all primitives at once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import Box, Cylinder, Plane, Sphere
from repro.io.synthetic import RotatedBox

coords = st.floats(-30.0, 30.0, allow_nan=False)
positive = st.floats(0.3, 8.0, allow_nan=False)


@st.composite
def rays(draw, n=8):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    origins = rng.uniform(-20, 20, size=(n, 3))
    directions = rng.normal(size=(n, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    return origins, directions


@given(data=rays(), z=coords)
def test_plane_hits_lie_on_plane(data, z):
    origins, directions = data
    t = Plane(z=z).intersect(origins, directions)
    hit = np.isfinite(t)
    points = origins[hit] + t[hit, None] * directions[hit]
    assert np.allclose(points[:, 2], z, atol=1e-6)
    # And the parameter is strictly positive (no backwards hits).
    assert np.all(t[hit] > 0)


@given(data=rays(), cx=coords, cy=coords, cz=coords, r=positive)
def test_sphere_hits_lie_on_surface(data, cx, cy, cz, r):
    origins, directions = data
    sphere = Sphere(center=(cx, cy, cz), radius=r)
    t = sphere.intersect(origins, directions)
    hit = np.isfinite(t)
    points = origins[hit] + t[hit, None] * directions[hit]
    distances = np.linalg.norm(points - [cx, cy, cz], axis=1)
    assert np.allclose(distances, r, atol=1e-5)
    assert np.all(t[hit] > 0)


@given(data=rays(), cx=coords, cy=coords, r=positive, h=positive)
def test_cylinder_hits_lie_on_shell(data, cx, cy, r, h):
    origins, directions = data
    cylinder = Cylinder(center=(cx, cy), radius=r, z_lo=0.0, z_hi=h)
    t = cylinder.intersect(origins, directions)
    hit = np.isfinite(t)
    points = origins[hit] + t[hit, None] * directions[hit]
    radial = np.sqrt((points[:, 0] - cx) ** 2 + (points[:, 1] - cy) ** 2)
    assert np.allclose(radial, r, atol=1e-5)
    assert np.all(points[:, 2] >= -1e-6)
    assert np.all(points[:, 2] <= h + 1e-6)


@given(data=rays(), x0=coords, y0=coords, z0=coords,
       w=positive, d=positive, h=positive)
@settings(max_examples=30)
def test_box_hits_lie_on_boundary(data, x0, y0, z0, w, d, h):
    origins, directions = data
    lo = np.array([x0, y0, z0])
    hi = lo + [w, d, h]
    box = Box(tuple(lo), tuple(hi))
    t = box.intersect(origins, directions)
    hit = np.isfinite(t)
    points = origins[hit] + t[hit, None] * directions[hit]
    # Inside (or on) the box...
    assert np.all(points >= lo - 1e-5)
    assert np.all(points <= hi + 1e-5)
    # ...and touching at least one face (unless the ray started inside,
    # in which case the reported t is the exit point — also a face).
    face_gap = np.minimum(np.abs(points - lo), np.abs(points - hi)).min(axis=1)
    assert np.all(face_gap < 1e-4)


@given(data=rays(), cx=coords, cy=coords, yaw=st.floats(-np.pi, np.pi),
       w=positive, d=positive, h=positive)
@settings(max_examples=30)
def test_rotated_box_hits_lie_on_boundary(data, cx, cy, yaw, w, d, h):
    origins, directions = data
    box = RotatedBox(center=(cx, cy, h / 2), size=(w, d, h), yaw=yaw)
    t = box.intersect(origins, directions)
    hit = np.isfinite(t)
    points = origins[hit] + t[hit, None] * directions[hit]
    # Transform hits into the box frame; they must lie on the unit slab.
    c, s = np.cos(-yaw), np.sin(-yaw)
    local = points - [cx, cy, h / 2]
    local = np.column_stack(
        [
            c * local[:, 0] - s * local[:, 1],
            s * local[:, 0] + c * local[:, 1],
            local[:, 2],
        ]
    )
    half = np.array([w, d, h]) / 2
    assert np.all(np.abs(local) <= half + 1e-5)
    face_gap = (half - np.abs(local)).min(axis=1)
    assert np.all(face_gap < 1e-4)


@given(data=rays())
@settings(max_examples=20)
def test_rotated_box_consistent_with_axis_aligned(data):
    """Zero-yaw RotatedBox must agree with Box exactly."""
    origins, directions = data
    aligned = Box((-1.0, -2.0, 0.0), (1.0, 2.0, 3.0))
    rotated = RotatedBox(center=(0.0, 0.0, 1.5), size=(2.0, 4.0, 3.0), yaw=0.0)
    t_aligned = aligned.intersect(origins, directions)
    t_rotated = rotated.intersect(origins, directions)
    both_hit = np.isfinite(t_aligned) & np.isfinite(t_rotated)
    assert np.array_equal(np.isfinite(t_aligned), np.isfinite(t_rotated))
    assert np.allclose(t_aligned[both_hit], t_rotated[both_hit], atol=1e-9)
