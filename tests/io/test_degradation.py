"""Degradation injection: determinism, clean twins, per-generator behavior."""

import dataclasses

import numpy as np
import pytest

from repro.io import (
    DynamicClutter,
    FrameDrop,
    NoiseBurst,
    OcclusionWedge,
    PointDropout,
    SceneSuite,
    degrade_sequence,
    make_sequence,
)


@pytest.fixture(scope="module")
def sequence():
    return make_sequence(n_frames=4, seed=7)


def clouds_equal(a, b) -> bool:
    return np.array_equal(a.points, b.points)


class TestDeterminism:
    def test_same_seed_bit_identical(self, sequence):
        degradations = (PointDropout(fraction=0.5), NoiseBurst(sigma=0.2))
        first = degrade_sequence(sequence, degradations, seed=3)
        second = degrade_sequence(sequence, degradations, seed=3)
        assert all(
            clouds_equal(a, b)
            for a, b in zip(first.frames, second.frames)
        )

    def test_different_seed_differs(self, sequence):
        degradations = (NoiseBurst(sigma=0.2),)
        first = degrade_sequence(sequence, degradations, seed=3)
        second = degrade_sequence(sequence, degradations, seed=4)
        assert not clouds_equal(first.frames[0], second.frames[0])

    def test_input_sequence_untouched(self, sequence):
        before = [frame.points.copy() for frame in sequence.frames]
        degrade_sequence(sequence, (NoiseBurst(sigma=0.5),), seed=0)
        assert all(
            np.array_equal(points, frame.points)
            for points, frame in zip(before, sequence.frames)
        )


class TestFrameWindowing:
    def test_frames_outside_window_bit_identical(self, sequence):
        degraded = degrade_sequence(
            sequence, (NoiseBurst(sigma=0.5, frames=(1, 2)),), seed=0
        )
        assert clouds_equal(degraded.frames[0], sequence.frames[0])
        assert clouds_equal(degraded.frames[3], sequence.frames[3])
        assert not clouds_equal(degraded.frames[1], sequence.frames[1])
        assert not clouds_equal(degraded.frames[2], sequence.frames[2])

    def test_poses_preserved_without_drops(self, sequence):
        degraded = degrade_sequence(
            sequence, (PointDropout(fraction=0.5),), seed=0
        )
        assert len(degraded.poses) == len(sequence.poses)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(degraded.poses, sequence.poses)
        )


class TestGenerators:
    def test_dropout_removes_points(self, sequence):
        degraded = degrade_sequence(
            sequence, (PointDropout(fraction=0.9),), seed=0
        )
        original = len(sequence.frames[0])
        survivors = len(degraded.frames[0])
        assert 0 < survivors < original
        assert survivors == pytest.approx(0.1 * original, rel=0.2)

    def test_dropout_keeps_at_least_one_point(self, sequence):
        degraded = degrade_sequence(
            sequence, (PointDropout(fraction=0.999),), seed=0
        )
        assert all(len(frame) >= 1 for frame in degraded.frames)

    def test_total_dropout_rejected(self):
        with pytest.raises(ValueError):
            PointDropout(fraction=1.0)

    def test_noise_burst_perturbs_every_point(self, sequence):
        degraded = degrade_sequence(
            sequence, (NoiseBurst(sigma=0.3),), seed=0
        )
        frame, original = degraded.frames[0], sequence.frames[0]
        assert len(frame) == len(original)
        offsets = np.linalg.norm(frame.points - original.points, axis=1)
        assert np.all(offsets > 0)
        assert np.std(offsets) < 1.0

    def test_occlusion_wedge_empties_sector(self, sequence):
        degraded = degrade_sequence(
            sequence,
            (OcclusionWedge(center_deg=0.0, width_deg=60.0),),
            seed=0,
        )
        frame = degraded.frames[0]
        azimuth = np.degrees(
            np.arctan2(frame.points[:, 1], frame.points[:, 0])
        )
        assert len(frame) < len(sequence.frames[0])
        assert not np.any(np.abs(azimuth) < 30.0)

    def test_clutter_relocates_but_preserves_count(self, sequence):
        degraded = degrade_sequence(
            sequence, (DynamicClutter(n_objects=2),), seed=0
        )
        frame, original = degraded.frames[0], sequence.frames[0]
        assert len(frame) == len(original)
        moved = ~np.all(frame.points == original.points, axis=1)
        assert 0 < moved.sum() <= len(original) // 2

    def test_frame_drop_removes_frame_and_pose(self, sequence):
        degraded = degrade_sequence(
            sequence, (FrameDrop(frames=(1,)),), seed=0
        )
        assert len(degraded.frames) == len(sequence.frames) - 1
        assert len(degraded.poses) == len(sequence.poses) - 1
        # Frame 2 slid into slot 1; its pose came along.
        assert clouds_equal(degraded.frames[1], sequence.frames[2])
        assert np.array_equal(degraded.poses[1], sequence.poses[2])

    def test_frame_drop_requires_explicit_frames(self):
        with pytest.raises(ValueError):
            FrameDrop()

    def test_dropping_too_many_frames_rejected(self, sequence):
        with pytest.raises(ValueError):
            degrade_sequence(
                sequence, (FrameDrop(frames=(0, 1, 2)),), seed=0
            )


class TestComposition:
    def test_applied_left_to_right(self, sequence):
        # Dropout-then-wedge and wedge-then-dropout visit different rng
        # streams over different survivor sets, so the results differ —
        # order is part of the contract.
        forward = degrade_sequence(
            sequence,
            (PointDropout(fraction=0.5), OcclusionWedge(width_deg=90.0)),
            seed=0,
        )
        reverse = degrade_sequence(
            sequence,
            (OcclusionWedge(width_deg=90.0), PointDropout(fraction=0.5)),
            seed=0,
        )
        assert not clouds_equal(forward.frames[0], reverse.frames[0])


class TestAdverseSuite:
    def test_clean_twin_recovers_clean_sequence(self):
        suite = SceneSuite.adverse(n_frames=4)
        spec = suite.specs["urban_noise_burst"]
        twin_spec = dataclasses.replace(spec, degradation=None)
        twin = twin_spec.build(4, suite.model)
        clean = SceneSuite.default(n_frames=4).sequence("urban")
        assert all(
            clouds_equal(a, b) for a, b in zip(twin.frames, clean.frames)
        )
        assert all(
            np.array_equal(a, b) for a, b in zip(twin.poses, clean.poses)
        )

    def test_adverse_scenes_present(self):
        suite = SceneSuite.adverse(n_frames=4)
        assert {
            "urban_noise_burst",
            "urban_blackout",
            "urban_clutter",
            "urban_outage",
            "corridor",
        } <= set(suite.names)
        # At least three scenes carry actual injected degradation.
        injected = [
            name
            for name in suite.names
            if suite.specs[name].degradation
        ]
        assert len(injected) >= 3

    def test_corridor_uses_noise_free_sensor(self):
        suite = SceneSuite.adverse(n_frames=4)
        assert suite.specs["corridor"].model.range_noise_std == 0.0
