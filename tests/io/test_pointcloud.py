"""Unit tests for the PointCloud container."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import PointCloud


@pytest.fixture
def cloud(rng):
    points = rng.normal(size=(30, 3))
    return PointCloud(
        points,
        normals=rng.normal(size=(30, 3)),
        curvature=rng.uniform(size=30),
    )


class TestConstruction:
    def test_len_and_points(self, rng):
        points = rng.normal(size=(5, 3))
        cloud = PointCloud(points)
        assert len(cloud) == 5
        assert np.array_equal(cloud.points, points)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            PointCloud(np.zeros(9))

    def test_empty_cloud_allowed(self):
        assert len(PointCloud(np.empty((0, 3)))) == 0

    def test_attribute_length_checked(self, rng):
        with pytest.raises(ValueError):
            PointCloud(rng.normal(size=(4, 3)), normals=np.zeros((3, 3)))

    def test_repr_mentions_attributes(self, cloud):
        assert "curvature" in repr(cloud)
        assert "normals" in repr(cloud)


class TestAttributes:
    def test_get_missing_raises_keyerror(self, cloud):
        with pytest.raises(KeyError):
            cloud.get_attribute("does_not_exist")

    def test_has_normals(self, cloud, rng):
        assert cloud.has_normals
        assert not PointCloud(rng.normal(size=(3, 3))).has_normals

    def test_set_attribute_after_construction(self, rng):
        cloud = PointCloud(rng.normal(size=(6, 3)))
        cloud.set_attribute("ring", np.arange(6))
        assert np.array_equal(cloud.get_attribute("ring"), np.arange(6))

    def test_attribute_names_sorted(self, cloud):
        assert cloud.attribute_names == ("curvature", "normals")


class TestDerivedClouds:
    def test_copy_is_deep(self, cloud):
        clone = cloud.copy()
        clone.points[0, 0] = 999.0
        clone.normals[0, 0] = 999.0
        assert cloud.points[0, 0] != 999.0
        assert cloud.normals[0, 0] != 999.0

    def test_select_keeps_attributes(self, cloud):
        subset = cloud.select(np.array([1, 3, 5]))
        assert len(subset) == 3
        assert np.array_equal(subset.points, cloud.points[[1, 3, 5]])
        assert np.array_equal(subset.normals, cloud.normals[[1, 3, 5]])

    def test_transform_moves_points_and_rotates_normals(self, cloud, rng):
        transform = se3.random_transform(rng)
        moved = cloud.transformed(transform)
        assert np.allclose(
            moved.points, se3.apply_transform(transform, cloud.points)
        )
        rotation = se3.rotation_part(transform)
        assert np.allclose(moved.normals, cloud.normals @ rotation.T)
        # Curvature is rotation-invariant and must be copied untouched.
        assert np.array_equal(
            moved.get_attribute("curvature"), cloud.get_attribute("curvature")
        )

    def test_transform_roundtrip(self, cloud, rng):
        transform = se3.random_transform(rng)
        back = cloud.transformed(transform).transformed(se3.invert(transform))
        assert np.allclose(back.points, cloud.points, atol=1e-12)

    def test_concatenate_counts(self, cloud):
        both = cloud.concatenate(cloud)
        assert len(both) == 2 * len(cloud)
        assert both.has_normals

    def test_concatenate_drops_unshared_attributes(self, rng):
        a = PointCloud(rng.normal(size=(3, 3)), ring=np.arange(3))
        b = PointCloud(rng.normal(size=(3, 3)))
        assert not a.concatenate(b).has_attribute("ring")

    def test_centroid_and_extent(self):
        cloud = PointCloud(np.array([[0, 0, 0], [2, 4, 6]], dtype=float))
        assert np.allclose(cloud.centroid(), [1, 2, 3])
        assert np.allclose(cloud.extent(), [2, 4, 6])

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            PointCloud(np.empty((0, 3))).centroid()


class TestDownsampling:
    def test_voxel_downsample_returns_subset(self, rng):
        cloud = PointCloud(rng.uniform(0, 10, size=(200, 3)))
        smaller = cloud.voxel_downsample(2.0)
        assert 0 < len(smaller) < len(cloud)
        # Every surviving point must exist in the original cloud.
        original = {tuple(p) for p in cloud.points}
        assert all(tuple(p) in original for p in smaller.points)

    def test_voxel_downsample_one_per_voxel(self):
        points = np.array(
            [[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [5.1, 5.1, 5.1]], dtype=float
        )
        smaller = PointCloud(points).voxel_downsample(1.0)
        assert len(smaller) == 2

    def test_voxel_downsample_keeps_attributes(self, cloud):
        smaller = cloud.voxel_downsample(1.0)
        assert smaller.has_normals
        assert len(smaller.normals) == len(smaller)

    def test_voxel_downsample_rejects_nonpositive(self, cloud):
        with pytest.raises(ValueError):
            cloud.voxel_downsample(0.0)

    def test_voxel_downsample_empty(self):
        empty = PointCloud(np.empty((0, 3)))
        assert len(empty.voxel_downsample(1.0)) == 0

    def test_random_downsample_fraction(self, cloud, rng):
        half = cloud.random_downsample(0.5, rng)
        assert len(half) == 15

    def test_random_downsample_bounds(self, cloud, rng):
        with pytest.raises(ValueError):
            cloud.random_downsample(0.0, rng)
        with pytest.raises(ValueError):
            cloud.random_downsample(1.5, rng)
