"""Tests for scene primitives, ray casting, and the LiDAR model."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import (
    Box,
    Cylinder,
    LidarModel,
    Plane,
    Scene,
    Sphere,
    room_scene,
    scan,
    urban_scene,
)
from repro.io.synthetic import RotatedBox


def single_ray(origin, direction):
    origin = np.asarray(origin, dtype=float).reshape(1, 3)
    direction = np.asarray(direction, dtype=float).reshape(1, 3)
    direction = direction / np.linalg.norm(direction)
    return origin, direction


class TestPlane:
    def test_downward_ray_hits(self):
        o, d = single_ray([0, 0, 5], [0, 0, -1])
        t = Plane(z=0.0).intersect(o, d)
        assert t[0] == pytest.approx(5.0)

    def test_upward_ray_misses(self):
        o, d = single_ray([0, 0, 5], [0, 0, 1])
        assert np.isinf(Plane(z=0.0).intersect(o, d)[0])

    def test_parallel_ray_misses(self):
        o, d = single_ray([0, 0, 5], [1, 0, 0])
        assert np.isinf(Plane(z=0.0).intersect(o, d)[0])


class TestBox:
    def test_axis_hit_distance(self):
        box = Box((1, -1, -1), (3, 1, 1))
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert box.intersect(o, d)[0] == pytest.approx(1.0)

    def test_miss_above(self):
        box = Box((1, -1, -1), (3, 1, 1))
        o, d = single_ray([0, 0, 5], [1, 0, 0])
        assert np.isinf(box.intersect(o, d)[0])

    def test_ray_starting_inside_exits(self):
        box = Box((-1, -1, -1), (1, 1, 1))
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert box.intersect(o, d)[0] == pytest.approx(1.0)

    def test_diagonal_hit(self):
        box = Box((1, 1, -1), (2, 2, 1))
        o, d = single_ray([0, 0, 0], [1, 1, 0])
        assert box.intersect(o, d)[0] == pytest.approx(np.sqrt(2))


class TestRotatedBox:
    def test_zero_yaw_matches_axis_aligned(self):
        rotated = RotatedBox(center=(2, 0, 0), size=(2, 2, 2), yaw=0.0)
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert rotated.intersect(o, d)[0] == pytest.approx(1.0)

    def test_rotation_changes_hit(self):
        # A thin slab rotated 90 deg: the ray along x now sees its width.
        thin = RotatedBox(center=(5, 0, 0), size=(0.2, 4.0, 2.0), yaw=0.0)
        turned = RotatedBox(center=(5, 0, 0), size=(0.2, 4.0, 2.0), yaw=np.pi / 2)
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert thin.intersect(o, d)[0] == pytest.approx(4.9)
        assert turned.intersect(o, d)[0] == pytest.approx(3.0)


class TestCylinder:
    def test_radial_hit(self):
        cylinder = Cylinder(center=(5, 0), radius=1.0, z_lo=0.0, z_hi=3.0)
        o, d = single_ray([0, 0, 1], [1, 0, 0])
        assert cylinder.intersect(o, d)[0] == pytest.approx(4.0)

    def test_z_bounds_respected(self):
        cylinder = Cylinder(center=(5, 0), radius=1.0, z_lo=0.0, z_hi=3.0)
        o, d = single_ray([0, 0, 10], [1, 0, 0])
        assert np.isinf(cylinder.intersect(o, d)[0])

    def test_vertical_ray_misses(self):
        cylinder = Cylinder(center=(5, 0), radius=1.0, z_lo=0.0, z_hi=3.0)
        o, d = single_ray([0, 0, 0], [0, 0, 1])
        assert np.isinf(cylinder.intersect(o, d)[0])


class TestSphere:
    def test_central_hit(self):
        sphere = Sphere(center=(5, 0, 0), radius=1.0)
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert sphere.intersect(o, d)[0] == pytest.approx(4.0)

    def test_tangent_grazes(self):
        sphere = Sphere(center=(5, 1, 0), radius=1.0)
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        t = sphere.intersect(o, d)[0]
        assert t == pytest.approx(5.0, abs=1e-6)

    def test_behind_misses(self):
        sphere = Sphere(center=(-5, 0, 0), radius=1.0)
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert np.isinf(sphere.intersect(o, d)[0])


class TestScene:
    def test_nearest_primitive_wins(self):
        scene = Scene()
        scene.add(Sphere(center=(5, 0, 0), radius=1.0))
        scene.add(Sphere(center=(10, 0, 0), radius=1.0))
        o, d = single_ray([0, 0, 0], [1, 0, 0])
        assert scene.intersect(o, d)[0] == pytest.approx(4.0)

    def test_empty_scene_all_inf(self, rng):
        scene = Scene()
        directions = rng.normal(size=(10, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        t = scene.intersect(np.zeros((10, 3)), directions)
        assert np.all(np.isinf(t))


class TestLidarModel:
    def test_ray_layout(self):
        model = LidarModel(channels=4, azimuth_steps=8)
        rays = model.ray_directions()
        assert rays.shape == (32, 3)
        assert np.allclose(np.linalg.norm(rays, axis=1), 1.0)

    def test_ring_major_order(self):
        model = LidarModel(channels=2, azimuth_steps=4, vertical_fov_deg=(-10, 10))
        rays = model.ray_directions()
        # First azimuth_steps rays share the lowest elevation.
        z0 = rays[:4, 2]
        z1 = rays[4:, 2]
        assert np.allclose(z0, z0[0])
        assert np.allclose(z1, z1[0])
        assert z1[0] > z0[0]


class TestScan:
    def test_scan_room_from_center(self, rng):
        scene = room_scene(size=10.0)
        model = LidarModel(
            channels=8, azimuth_steps=60, range_noise_std=0.0, dropout_rate=0.0
        )
        pose = se3.make_transform(np.eye(3), [0, 0, 1.5])
        cloud = scan(scene, pose, model, rng)
        assert len(cloud) > 100
        # All returns within the room's diagonal.
        assert np.all(np.linalg.norm(cloud.points, axis=1) < 16.0)
        for attr in ("ring", "azimuth", "range"):
            assert cloud.has_attribute(attr)

    def test_scan_attributes_consistent(self, rng):
        scene = room_scene()
        model = LidarModel(channels=4, azimuth_steps=30, range_noise_std=0.0)
        cloud = scan(scene, se3.make_transform(np.eye(3), [0, 0, 1.0]), model, rng)
        ranges = np.linalg.norm(cloud.points, axis=1)
        assert np.allclose(ranges, cloud.get_attribute("range"), atol=1e-9)
        assert cloud.get_attribute("ring").max() < 4
        assert cloud.get_attribute("azimuth").max() < 30

    def test_range_limits_respected(self, rng):
        scene = Scene()
        scene.add(Sphere(center=(200.0, 0, 0), radius=1.0))  # beyond max range
        scene.add(Sphere(center=(0.3, 0, 0), radius=0.1))  # below min range
        model = LidarModel(channels=1, azimuth_steps=90, vertical_fov_deg=(0, 0),
                           range_noise_std=0.0, dropout_rate=0.0)
        cloud = scan(scene, se3.identity(), model, rng)
        assert len(cloud) == 0

    def test_dropout_reduces_returns(self, rng):
        scene = room_scene()
        pose = se3.make_transform(np.eye(3), [0, 0, 1.5])
        base_model = LidarModel(channels=8, azimuth_steps=60, dropout_rate=0.0)
        drop_model = LidarModel(channels=8, azimuth_steps=60, dropout_rate=0.5)
        full = scan(scene, pose, base_model, np.random.default_rng(0))
        dropped = scan(scene, pose, drop_model, np.random.default_rng(0))
        assert len(dropped) < len(full) * 0.7

    def test_sensor_frame_output(self, rng):
        # The same scene scanned from a translated pose should produce
        # points shifted in the *sensor* frame.
        scene = Scene()
        scene.add(Plane(z=0.0))
        model = LidarModel(channels=4, azimuth_steps=16, range_noise_std=0.0)
        near = scan(scene, se3.make_transform(np.eye(3), [0, 0, 1.0]), model, rng)
        far = scan(scene, se3.make_transform(np.eye(3), [0, 0, 2.0]), model, rng)
        # Ground is farther below the higher sensor.
        assert far.points[:, 2].mean() < near.points[:, 2].mean()


class TestProceduralScenes:
    def test_urban_scene_has_structure(self, rng):
        scene = urban_scene(rng, length=100.0)
        kinds = {type(p).__name__ for p in scene.primitives}
        assert "Plane" in kinds
        assert "Box" in kinds
        assert "Cylinder" in kinds
        assert "RotatedBox" in kinds

    def test_urban_scene_deterministic_per_seed(self):
        a = urban_scene(np.random.default_rng(5), length=80.0)
        b = urban_scene(np.random.default_rng(5), length=80.0)
        assert len(a.primitives) == len(b.primitives)

    def test_room_scene_closed(self):
        scene = room_scene(size=8.0)
        assert len(scene.primitives) >= 6


class TestSceneVariants:
    def test_highway_scene_structure(self, rng):
        from repro.io import highway_scene

        scene = highway_scene(rng, length=200.0)
        kinds = {type(p).__name__ for p in scene.primitives}
        assert {"Plane", "Box", "Cylinder", "RotatedBox"} <= kinds

    def test_highway_scannable(self, rng):
        from repro.geometry import se3
        from repro.io import LidarModel, highway_scene, scan

        scene = highway_scene(rng, length=150.0)
        model = LidarModel(channels=8, azimuth_steps=90, dropout_rate=0.0)
        cloud = scan(scene, se3.make_transform(np.eye(3), [0, 0, 1.8]), model, rng)
        assert len(cloud) > 100

    def test_intersection_scene_structure(self, rng):
        from repro.io import intersection_scene

        scene = intersection_scene(rng)
        boxes = [p for p in scene.primitives if type(p).__name__ == "Box"]
        assert len(boxes) >= 4  # the four corner blocks

    def test_intersection_scannable(self, rng):
        from repro.geometry import se3
        from repro.io import LidarModel, intersection_scene, scan

        scene = intersection_scene(rng)
        model = LidarModel(channels=8, azimuth_steps=90, dropout_rate=0.0)
        cloud = scan(scene, se3.make_transform(np.eye(3), [0, 0, 1.8]), model, rng)
        assert len(cloud) > 100
        # Structure on all four sides of the sensor.
        assert (cloud.points[:, 0] > 2).any() and (cloud.points[:, 0] < -2).any()
        assert (cloud.points[:, 1] > 2).any() and (cloud.points[:, 1] < -2).any()


class TestTrajectories:
    def test_loop_returns_to_start(self):
        from repro.geometry import se3
        from repro.io import loop_trajectory

        poses = loop_trajectory(24, radius=5.0)
        assert len(poses) == 24
        # One more step would land exactly on frame 0 again: the gap
        # between the last pose and the first is one ordinary step.
        step = np.linalg.norm(
            se3.translation_part(poses[1]) - se3.translation_part(poses[0])
        )
        closing = np.linalg.norm(
            se3.translation_part(poses[-1]) - se3.translation_part(poses[0])
        )
        assert closing == pytest.approx(step, rel=1e-9)
        for pose in poses:
            assert se3.is_valid_transform(pose)
            assert np.linalg.norm(se3.translation_part(pose)[:2]) == (
                pytest.approx(5.0)
            )

    def test_loop_heading_is_tangent(self):
        from repro.geometry import se3
        from repro.io import loop_trajectory

        poses = loop_trajectory(36, radius=5.0)
        for before, after in zip(poses[:-1], poses[1:]):
            motion = se3.translation_part(after) - se3.translation_part(before)
            heading = se3.rotation_part(before) @ np.array([1.0, 0.0, 0.0])
            cosine = motion @ heading / np.linalg.norm(motion)
            assert cosine > 0.99  # forward, within the turn discretization

    def test_loop_laps_multiply_the_angle(self):
        from repro.io import loop_trajectory

        single = loop_trajectory(12, radius=5.0, laps=1)
        double = loop_trajectory(24, radius=5.0, laps=2)
        # The double-lap trajectory traverses the same circle at the
        # same per-frame angle: its first lap reproduces the single lap.
        for a, b in zip(single, double[:12]):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_loop_validation(self):
        from repro.io import loop_trajectory

        with pytest.raises(ValueError):
            loop_trajectory(1)
        with pytest.raises(ValueError):
            loop_trajectory(10, laps=0)

    def test_figure_eight_crosses_the_origin_and_closes(self):
        from repro.geometry import se3
        from repro.io import figure_eight_trajectory

        poses = figure_eight_trajectory(32, radius=5.0)
        assert len(poses) == 32
        positions = np.array([se3.translation_part(p) for p in poses])
        # Starts at the self-intersection (origin) and revisits its
        # neighborhood mid-run on the crossing stroke.
        assert np.linalg.norm(positions[0][:2]) < 1e-9
        mid = len(poses) // 2
        assert np.linalg.norm(positions[mid][:2]) < 1.5
        # Both lobes are visited.
        assert positions[:, 0].max() > 5.0 and positions[:, 0].min() < -5.0
        for pose in poses:
            assert se3.is_valid_transform(pose)

    def test_figure_eight_validation(self):
        from repro.io import figure_eight_trajectory

        with pytest.raises(ValueError):
            figure_eight_trajectory(1)
