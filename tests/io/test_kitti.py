"""Round-trip tests for KITTI pose-file I/O."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import read_kitti_poses, write_kitti_poses


class TestRoundTrip:
    def test_poses_survive(self, tmp_path, rng):
        poses = [se3.random_transform(rng) for _ in range(10)]
        path = tmp_path / "poses.txt"
        write_kitti_poses(path, poses)
        loaded = read_kitti_poses(path)
        assert len(loaded) == 10
        for original, back in zip(poses, loaded):
            assert np.allclose(original, back, atol=1e-8)

    def test_twelve_values_per_line(self, tmp_path, rng):
        path = tmp_path / "poses.txt"
        write_kitti_poses(path, [se3.random_transform(rng)])
        line = path.read_text().strip()
        assert len(line.split()) == 12

    def test_empty_trajectory(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_kitti_poses(path, [])
        assert read_kitti_poses(path) == []


class TestValidation:
    def test_bad_shape_rejected_on_write(self, tmp_path):
        with pytest.raises(ValueError):
            write_kitti_poses(tmp_path / "bad.txt", [np.eye(3)])

    def test_wrong_value_count_rejected(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("1 0 0 0 0 1 0 0 0 0 1\n")  # 11 values
        with pytest.raises(ValueError, match="line 1"):
            read_kitti_poses(path)

    def test_non_rigid_rejected(self, tmp_path):
        path = tmp_path / "scaled.txt"
        path.write_text("2 0 0 0 0 2 0 0 0 0 2 0\n")  # scale-2 matrix
        with pytest.raises(ValueError, match="rigid"):
            read_kitti_poses(path)

    def test_blank_lines_skipped(self, tmp_path, rng):
        path = tmp_path / "gaps.txt"
        write_kitti_poses(path, [se3.random_transform(rng)])
        path.write_text(path.read_text() + "\n\n")
        assert len(read_kitti_poses(path)) == 1
