"""Round-trip and loader tests for KITTI dataset I/O."""

from pathlib import Path

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import (
    load_kitti_sequence,
    read_kitti_poses,
    read_velodyne_bin,
    write_kitti_poses,
    write_velodyne_bin,
)
from repro.io.pointcloud import PointCloud


class TestRoundTrip:
    def test_poses_survive(self, tmp_path, rng):
        poses = [se3.random_transform(rng) for _ in range(10)]
        path = tmp_path / "poses.txt"
        write_kitti_poses(path, poses)
        loaded = read_kitti_poses(path)
        assert len(loaded) == 10
        for original, back in zip(poses, loaded):
            assert np.allclose(original, back, atol=1e-8)

    def test_twelve_values_per_line(self, tmp_path, rng):
        path = tmp_path / "poses.txt"
        write_kitti_poses(path, [se3.random_transform(rng)])
        line = path.read_text().strip()
        assert len(line.split()) == 12

    def test_empty_trajectory(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_kitti_poses(path, [])
        assert read_kitti_poses(path) == []


class TestValidation:
    def test_bad_shape_rejected_on_write(self, tmp_path):
        with pytest.raises(ValueError):
            write_kitti_poses(tmp_path / "bad.txt", [np.eye(3)])

    def test_wrong_value_count_rejected(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("1 0 0 0 0 1 0 0 0 0 1\n")  # 11 values
        with pytest.raises(ValueError, match="line 1"):
            read_kitti_poses(path)

    def test_non_rigid_rejected(self, tmp_path):
        path = tmp_path / "scaled.txt"
        path.write_text("2 0 0 0 0 2 0 0 0 0 2 0\n")  # scale-2 matrix
        with pytest.raises(ValueError, match="rigid"):
            read_kitti_poses(path)

    def test_blank_lines_skipped(self, tmp_path, rng):
        path = tmp_path / "gaps.txt"
        write_kitti_poses(path, [se3.random_transform(rng)])
        path.write_text(path.read_text() + "\n\n")
        assert len(read_kitti_poses(path)) == 1


FIXTURE_ROOT = Path(__file__).parent / "data" / "kitti"


class TestVelodyneRoundTrip:
    def test_points_and_intensity_survive(self, tmp_path, rng):
        points = rng.normal(size=(100, 3))
        cloud = PointCloud(points, intensity=rng.random(100))
        path = tmp_path / "scan.bin"
        write_velodyne_bin(path, cloud)
        back = read_velodyne_bin(path)
        # The on-disk format is float32; the round trip is exact at
        # float32 resolution.
        assert np.allclose(back.points, points, atol=1e-6)
        assert np.allclose(
            back.get_attribute("intensity"),
            cloud.get_attribute("intensity"),
            atol=1e-7,
        )

    def test_missing_intensity_written_as_zeros(self, tmp_path, rng):
        path = tmp_path / "scan.bin"
        write_velodyne_bin(path, PointCloud(rng.normal(size=(10, 3))))
        back = read_velodyne_bin(path)
        assert np.all(back.get_attribute("intensity") == 0.0)

    def test_file_is_float32_quadruples(self, tmp_path, rng):
        path = tmp_path / "scan.bin"
        write_velodyne_bin(path, PointCloud(rng.normal(size=(25, 3))))
        assert path.stat().st_size == 25 * 4 * 4

    def test_truncated_scan_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.zeros(7, dtype=np.float32).tofile(path)
        with pytest.raises(ValueError, match="quadruples"):
            read_velodyne_bin(path)


class TestSequenceLoader:
    """Smoke tests over the tiny committed fixture (synthetic scans
    written in the real dataset's directory layout and binary format)."""

    def test_fixture_loads(self):
        sequence = load_kitti_sequence(FIXTURE_ROOT, "00")
        assert sequence.name == "00"
        assert len(sequence) == 3
        assert sequence.poses is not None
        assert len(sequence.poses) == 3
        for frame in sequence.frames:
            assert len(frame) > 100
            assert frame.has_attribute("intensity")
        for pose in sequence.poses:
            assert se3.is_valid_transform(pose)

    def test_frames_are_distinct_scans(self):
        sequence = load_kitti_sequence(FIXTURE_ROOT, "00")
        assert not np.array_equal(
            sequence.frames[0].points, sequence.frames[1].points
        )
        # Consecutive ground-truth poses are ~1 m apart (the fixture
        # generator's step), so the poses really are a trajectory.
        step = np.linalg.norm(
            sequence.poses[1][:3, 3] - sequence.poses[0][:3, 3]
        )
        assert 0.5 < step < 2.0

    def test_max_frames_truncates_scans_and_poses(self):
        sequence = load_kitti_sequence(FIXTURE_ROOT, "00", max_frames=2)
        assert len(sequence) == 2
        assert len(sequence.poses) == 2

    def test_missing_sequence_rejected(self):
        with pytest.raises(FileNotFoundError):
            load_kitti_sequence(FIXTURE_ROOT, "99")

    def test_missing_poses_is_test_split(self, tmp_path):
        scan_dir = tmp_path / "sequences" / "11" / "velodyne"
        scan_dir.mkdir(parents=True)
        source = load_kitti_sequence(FIXTURE_ROOT, "00")
        for index, frame in enumerate(source.frames):
            write_velodyne_bin(scan_dir / f"{index:06d}.bin", frame)
        sequence = load_kitti_sequence(tmp_path, "11")
        assert len(sequence) == 3
        assert sequence.poses is None

    def test_short_pose_file_rejected(self, tmp_path):
        scan_dir = tmp_path / "sequences" / "00" / "velodyne"
        scan_dir.mkdir(parents=True)
        source = load_kitti_sequence(FIXTURE_ROOT, "00")
        for index, frame in enumerate(source.frames):
            write_velodyne_bin(scan_dir / f"{index:06d}.bin", frame)
        (tmp_path / "poses").mkdir()
        write_kitti_poses(tmp_path / "poses" / "00.txt", source.poses[:2])
        with pytest.raises(ValueError, match="2 poses for 3 scans"):
            load_kitti_sequence(tmp_path, "00")
