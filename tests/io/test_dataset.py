"""Tests for the synthetic sequence dataset."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import SyntheticSequence, default_test_model, make_sequence


class TestMakeSequence:
    def test_lengths_align(self):
        sequence = make_sequence(n_frames=3, seed=0)
        assert len(sequence) == 3
        assert len(sequence.frames) == len(sequence.poses) == 3

    def test_deterministic_per_seed(self):
        a = make_sequence(n_frames=2, seed=42)
        b = make_sequence(n_frames=2, seed=42)
        assert len(a.frames[0]) == len(b.frames[0])
        assert np.allclose(a.frames[0].points, b.frames[0].points)

    def test_different_seeds_differ(self):
        a = make_sequence(n_frames=1, seed=1)
        b = make_sequence(n_frames=1, seed=2)
        assert len(a.frames[0]) != len(b.frames[0]) or not np.allclose(
            a.frames[0].points[:10], b.frames[0].points[:10]
        )

    def test_frames_have_lidar_channels(self):
        sequence = make_sequence(n_frames=1, seed=0)
        frame = sequence.frames[0]
        assert frame.has_attribute("ring")
        assert frame.has_attribute("azimuth")

    def test_curved_trajectory_rotates(self):
        sequence = make_sequence(n_frames=5, seed=0, yaw_rate=0.1)
        first = se3.rotation_part(sequence.poses[0])
        last = se3.rotation_part(sequence.poses[-1])
        assert se3.rotation_angle(first.T @ last) > 0.3


class TestPairs:
    def test_pair_ground_truth_translation(self):
        sequence = make_sequence(n_frames=3, seed=0, step=2.0)
        _, _, gt = sequence.pair(0)
        # Straight +x trajectory: relative transform is a 2 m x-shift.
        assert np.allclose(se3.translation_part(gt), [2.0, 0.0, 0.0], atol=1e-12)
        assert np.allclose(se3.rotation_part(gt), np.eye(3), atol=1e-12)

    def test_gt_aligns_static_geometry(self):
        # Transforming source points by the GT relative pose must land
        # them near the target frame's scan of the same scene (within
        # sensor noise + sampling differences).
        sequence = make_sequence(n_frames=2, seed=4)
        source, target, gt = sequence.pair(0)
        moved = se3.apply_transform(gt, source.points)
        # Compare coarse centroids of the static scene as a sanity check.
        assert np.linalg.norm(
            moved.mean(axis=0) - target.points.mean(axis=0)
        ) < np.linalg.norm(source.points.mean(axis=0) - target.points.mean(axis=0)) + 1.0

    def test_pair_index_bounds(self):
        sequence = make_sequence(n_frames=2, seed=0)
        with pytest.raises(IndexError):
            sequence.pair(1)
        with pytest.raises(IndexError):
            sequence.pair(-1)

    def test_pairs_iterates_all(self):
        sequence = make_sequence(n_frames=4, seed=0)
        assert len(list(sequence.pairs())) == 3


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        sequence = make_sequence(n_frames=2, seed=0)
        with pytest.raises(ValueError):
            SyntheticSequence(
                frames=sequence.frames,
                poses=sequence.poses[:1],
                scene=sequence.scene,
                model=sequence.model,
            )

    def test_default_test_model_is_small(self):
        model = default_test_model()
        assert model.channels * model.azimuth_steps < 10_000


class TestSceneSuite:
    def small_suite(self, **kwargs):
        from repro.io import SceneSuite

        return SceneSuite.default(
            n_frames=2,
            model=default_test_model(azimuth_steps=60, channels=6),
            **kwargs,
        )

    def test_default_has_five_scenes(self):
        suite = self.small_suite()
        assert suite.names == (
            "urban", "highway", "intersection", "room", "urban_loop"
        )
        assert len(suite) == 5
        assert "urban" in suite and "desert" not in suite

    def test_urban_loop_follows_loop_trajectory(self):
        import numpy as np

        from repro.io import loop_trajectory

        suite = self.small_suite()
        sequence = suite.sequence("urban_loop")
        # Short builds fall back to a single lap (two laps over a
        # handful of frames would repeat or jumble poses).
        expected = loop_trajectory(2, radius=5.0, laps=1)
        assert all(
            np.array_equal(pose, want)
            for pose, want in zip(sequence.poses, expected)
        )

    def test_sequences_are_lazy_and_cached(self):
        suite = self.small_suite()
        assert not suite._sequences
        first = suite.sequence("room")
        assert suite.sequence("room") is first
        assert len(first) == 2

    def test_scene_subset(self):
        suite = self.small_suite(scenes=("urban", "room"))
        assert suite.names == ("urban", "room")
        with pytest.raises(ValueError):
            self.small_suite(scenes=("urban", "nope"))

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            self.small_suite().sequence("nope")

    def test_items_yields_all(self):
        suite = self.small_suite(scenes=("urban", "room"))
        names = [name for name, seq in suite.items() if len(seq) == 2]
        assert names == ["urban", "room"]

    def test_sequences_deterministic(self):
        import numpy as np

        a = self.small_suite().sequence("intersection")
        b = self.small_suite().sequence("intersection")
        assert np.array_equal(a.frames[0].points, b.frames[0].points)

    def test_custom_spec(self):
        from repro.io import SceneSpec, SceneSuite
        from repro.io.synthetic import room_scene

        suite = SceneSuite(
            {"tiny": SceneSpec(lambda rng: room_scene(size=6.0), step=0.2)},
            n_frames=2,
            model=default_test_model(azimuth_steps=60, channels=6),
        )
        assert suite.names == ("tiny",)
        assert len(suite.sequence("tiny")) == 2

    def test_validation(self):
        from repro.io import SceneSuite

        with pytest.raises(ValueError):
            SceneSuite({})
        with pytest.raises(ValueError):
            self.small_suite().__class__.default(n_frames=1)
