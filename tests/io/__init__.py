"""Test package (unique basenames across sibling packages need importable packages)."""
