"""Round-trip and robustness tests for the ASCII PCD reader/writer."""

import numpy as np
import pytest

from repro.io import PointCloud, read_pcd, write_pcd


class TestRoundTrip:
    def test_points_only(self, tmp_path, rng):
        cloud = PointCloud(rng.normal(size=(25, 3)))
        path = tmp_path / "plain.pcd"
        write_pcd(path, cloud)
        loaded = read_pcd(path)
        assert len(loaded) == 25
        assert np.allclose(loaded.points, cloud.points, atol=1e-6)

    def test_with_normals_and_curvature(self, tmp_path, rng):
        normals = rng.normal(size=(10, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        cloud = PointCloud(
            rng.normal(size=(10, 3)),
            normals=normals,
            curvature=rng.uniform(size=10),
        )
        path = tmp_path / "full.pcd"
        write_pcd(path, cloud)
        loaded = read_pcd(path)
        assert loaded.has_normals
        assert loaded.has_attribute("curvature")
        assert np.allclose(loaded.normals, normals, atol=1e-6)
        assert np.allclose(
            loaded.get_attribute("curvature"),
            cloud.get_attribute("curvature"),
            atol=1e-6,
        )

    def test_empty_cloud(self, tmp_path):
        path = tmp_path / "empty.pcd"
        write_pcd(path, PointCloud(np.empty((0, 3))))
        assert len(read_pcd(path)) == 0

    def test_header_fields(self, tmp_path, rng):
        path = tmp_path / "header.pcd"
        write_pcd(path, PointCloud(rng.normal(size=(3, 3))))
        text = path.read_text()
        assert "VERSION 0.7" in text
        assert "FIELDS x y z" in text
        assert "POINTS 3" in text
        assert "DATA ascii" in text


class TestRobustness:
    def test_rejects_binary_data(self, tmp_path):
        path = tmp_path / "binary.pcd"
        path.write_text(
            "VERSION 0.7\nFIELDS x y z\nSIZE 4 4 4\nTYPE F F F\n"
            "COUNT 1 1 1\nWIDTH 1\nHEIGHT 1\nVIEWPOINT 0 0 0 1 0 0 0\n"
            "POINTS 1\nDATA binary\n"
        )
        with pytest.raises(ValueError, match="ASCII"):
            read_pcd(path)

    def test_rejects_missing_xyz(self, tmp_path):
        path = tmp_path / "nz.pcd"
        path.write_text(
            "VERSION 0.7\nFIELDS x y\nSIZE 4 4\nTYPE F F\nCOUNT 1 1\n"
            "WIDTH 1\nHEIGHT 1\nVIEWPOINT 0 0 0 1 0 0 0\nPOINTS 1\n"
            "DATA ascii\n1 2\n"
        )
        with pytest.raises(ValueError, match="required field"):
            read_pcd(path)

    def test_rejects_count_mismatch(self, tmp_path):
        path = tmp_path / "short.pcd"
        path.write_text(
            "VERSION 0.7\nFIELDS x y z\nSIZE 4 4 4\nTYPE F F F\nCOUNT 1 1 1\n"
            "WIDTH 5\nHEIGHT 1\nVIEWPOINT 0 0 0 1 0 0 0\nPOINTS 5\n"
            "DATA ascii\n1 2 3\n"
        )
        with pytest.raises(ValueError, match="does not match"):
            read_pcd(path)

    def test_rejects_malformed_header(self, tmp_path):
        path = tmp_path / "bad.pcd"
        path.write_text("VERSION 0.7\nNOT_A_KEY something\n")
        with pytest.raises(ValueError, match="malformed"):
            read_pcd(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "comments.pcd"
        path.write_text(
            "# leading comment\nVERSION 0.7\nFIELDS x y z\nSIZE 4 4 4\n"
            "TYPE F F F\nCOUNT 1 1 1\nWIDTH 1\nHEIGHT 1\n"
            "VIEWPOINT 0 0 0 1 0 0 0\nPOINTS 1\nDATA ascii\n1.5 2.5 3.5\n"
        )
        loaded = read_pcd(path)
        assert np.allclose(loaded.points, [[1.5, 2.5, 3.5]])
