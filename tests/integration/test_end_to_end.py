"""End-to-end integration: registration quality, odometry, and the full
algorithm -> workload -> accelerator chain."""

import numpy as np
import pytest

from repro.accel import (
    CPUModel,
    GPUModel,
    TigrisSimulator,
    registration_workload,
)
from repro.core import ApproximateSearchConfig
from repro.geometry import metrics
from repro.io import make_sequence
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
)


def odometry_config() -> PipelineConfig:
    return PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=10
        ),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric="point_to_plane",
            max_iterations=20,
        ),
        skip_initial_estimation=True,
    )


class TestOdometry:
    def test_sequence_odometry_reasonable(self, lidar_sequence):
        """Chain frame-to-frame registrations into a trajectory and
        score it with the KITTI metrics — the paper's accuracy setup."""
        pipeline = Pipeline(odometry_config())
        relatives = []
        for source, target, _ in lidar_sequence.pairs():
            result = pipeline.register(source, target)
            relatives.append(result.transformation)
        estimated = metrics.trajectory_from_relative(relatives)
        errors = metrics.kitti_sequence_errors(estimated, lidar_sequence.poses)
        # Sparse test scans: accept coarse but meaningful accuracy.
        assert errors.translational < 0.6
        assert errors.rotational < 2.0

    def test_curved_sequence(self):
        sequence = make_sequence(n_frames=3, seed=9, yaw_rate=0.03)
        pipeline = Pipeline(odometry_config())
        source, target, gt = sequence.pair(0)
        result = pipeline.register(source, target)
        rot_err, trans_err = metrics.pair_errors(result.transformation, gt)
        assert trans_err < 1.0
        assert rot_err < 5.0


class TestAlgorithmToAccelerator:
    """The full co-design story on one frame pair."""

    @pytest.fixture(scope="class")
    def workloads(self, lidar_pair):
        source, target, _ = lidar_pair
        two_stage = registration_workload(
            source.points, target.points,
            normal_radius=0.6, icp_iterations=3, leaf_size=64,
        )
        canonical = registration_workload(
            source.points, target.points,
            normal_radius=0.6, icp_iterations=3, leaf_size=1,
        )
        return two_stage, canonical

    def test_ordering_of_platforms(self, workloads):
        """Accelerator < GPU < CPU in time on the same work."""
        two_stage, canonical = workloads
        accel = TigrisSimulator().simulate_many(list(two_stage.values()))
        gpu = sum(
            GPUModel().run(w).time_seconds for w in two_stage.values()
        )
        cpu = sum(
            CPUModel().run(w).time_seconds for w in canonical.values()
        )
        assert accel.time_seconds < gpu < cpu

    def test_headline_speedup_band(self, workloads):
        """Acc-2SKD over Base-2SKD lands in the tens (paper: 77.2x)."""
        two_stage, _ = workloads
        accel = TigrisSimulator().simulate_many(list(two_stage.values()))
        gpu = sum(GPUModel().run(w).time_seconds for w in two_stage.values())
        speedup = gpu / accel.time_seconds
        assert 20 < speedup < 300

    def test_power_reduction_band(self, workloads):
        """Power reduction vs GPU lands near the paper's 7.4x."""
        two_stage, _ = workloads
        accel = TigrisSimulator().simulate_many(list(two_stage.values()))
        reduction = GPUModel().power_watts / accel.power_watts
        assert 2 < reduction < 30

    def test_approximate_workload_cuts_nodes(self, lidar_pair):
        """Sec. 6.3: approximate search removes a large share of node
        visits on the dense stages (paper: 72.8 % at KITTI density).

        Followers fire when a query lands within ``thd`` of a leader, so
        the reduction scales with point density.  Our test frames are
        ~50x sparser than KITTI; the NN stage (thd = 1.2 m) still cuts
        deeply while the radius stage saves less — both assertions below
        are the density-scaled versions of the paper's claim.
        """
        source, target, _ = lidar_pair
        exact = registration_workload(
            source.points, target.points, icp_iterations=2, leaf_size=64
        )
        approx = registration_workload(
            source.points, target.points, icp_iterations=2, leaf_size=64,
            approx=ApproximateSearchConfig(),
        )
        rpce_reduction = 1.0 - (
            approx["RPCE"].total_nodes_visited
            + approx["RPCE"].total_leader_checks
        ) / exact["RPCE"].total_nodes_visited
        assert rpce_reduction > 0.3
        exact_nodes = sum(w.total_nodes_visited for w in exact.values())
        approx_nodes = sum(
            w.total_nodes_visited + w.total_leader_checks
            for w in approx.values()
        )
        assert approx_nodes < exact_nodes
