"""Self-registration invariants: aligning a cloud with (a transformed
copy of) itself must recover the transform to numerical precision.

These are the strongest end-to-end correctness probes available without
ground-truth scan geometry: no sampling mismatch, no sensor noise —
any residual error is the pipeline's own.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import se3
from repro.registration import (
    ICPConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
)


def icp_only(backend="twostage", metric="point_to_point"):
    return PipelineConfig(
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric=metric,
            max_iterations=40,
            transformation_epsilon=1e-9,
        ),
        search=SearchConfig(backend=backend),
        skip_initial_estimation=True,
    )


class TestSelfRegistration:
    def test_identity_for_same_cloud(self, lidar_pair):
        source, _, _ = lidar_pair
        result = Pipeline(icp_only()).register(source, source)
        rot, trans = se3.transform_distance(np.eye(4), result.transformation)
        assert rot < 1e-9
        assert trans < 1e-9
        assert result.icp.rmse < 1e-12

    @given(seed=st.integers(0, 50))
    @settings(max_examples=5, deadline=None)
    def test_recovers_random_small_transform(self, lidar_pair, seed):
        source, _, _ = lidar_pair
        rng = np.random.default_rng(seed)
        truth = se3.small_transform(rng, max_angle=0.05, max_translation=0.3)
        moved = source.transformed(se3.invert(truth))
        result = Pipeline(icp_only()).register(moved, source)
        rot, trans = se3.transform_distance(truth, result.transformation)
        assert rot < 1e-4
        assert trans < 1e-4

    def test_all_backends_recover(self, lidar_pair):
        source, _, _ = lidar_pair
        rng = np.random.default_rng(3)
        truth = se3.small_transform(rng, max_angle=0.03, max_translation=0.2)
        moved = source.transformed(se3.invert(truth))
        for backend in ("canonical", "twostage"):
            result = Pipeline(icp_only(backend=backend)).register(moved, source)
            _, trans = se3.transform_distance(truth, result.transformation)
            assert trans < 1e-4, backend

    def test_point_to_plane_self_registration(self, cloud_with_normals):
        cloud = cloud_with_normals
        rng = np.random.default_rng(4)
        truth = se3.small_transform(rng, max_angle=0.02, max_translation=0.15)
        moved = cloud.transformed(se3.invert(truth))
        result = Pipeline(icp_only(metric="point_to_plane")).register(
            moved, cloud
        )
        _, trans = se3.transform_distance(truth, result.transformation)
        assert trans < 1e-3

    def test_larger_displacement_with_seed(self, lidar_pair):
        """A big displacement is recovered when seeded nearby —
        the initial-estimation phase's contract."""
        source, _, _ = lidar_pair
        rng = np.random.default_rng(5)
        truth = se3.make_transform(se3.rot_z(0.3), [3.0, -1.0, 0.2])
        moved = source.transformed(se3.invert(truth))
        near = se3.compose(truth, se3.small_transform(rng, 0.02, 0.2))
        result = Pipeline(icp_only()).register(moved, source, initial=near)
        _, trans = se3.transform_distance(truth, result.transformation)
        assert trans < 1e-4
