"""Smoke tests: the shipped examples must run end to end.

Each example is executed as a subprocess the way a user would run it,
with its smallest work setting.  These are the slowest tests in the
suite (seconds each) but guard the repository's front door.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "translation error" in output
        assert "KD-tree search share" in output

    def test_odometry(self):
        output = run_example("odometry.py", "--frames", "3")
        assert "KITTI-style sequence errors" in output
        assert "translational:" in output

    def test_accelerator_sim(self):
        output = run_example("accelerator_sim.py")
        assert "Acc-2SKD vs Base-2SKD speedup" in output
        assert "energy breakdown" in output

    def test_mapping(self, tmp_path):
        out_file = tmp_path / "map.pcd"
        output = run_example(
            "mapping.py", "--out", str(out_file),
            "--frames", "24", "--laps", "1",
        )
        assert "global map" in output
        assert "loop-closed mapping" in output
        assert "keyframes" in output
        assert out_file.exists()
        from repro.io import read_pcd

        cloud = read_pcd(out_file)
        assert len(cloud) > 1000

    def test_design_space_exploration(self):
        output = run_example(
            "design_space_exploration.py", "--points", "DP1"
        )
        assert "Fig. 4b" in output
        assert "DP1" in output


class TestCLI:
    def test_info_command(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "Tigris" in result.stdout
        assert "repro.core" in result.stdout

    def test_demo_command(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "demo"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0
        assert "speedup" in result.stdout
