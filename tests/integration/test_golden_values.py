"""Golden end-to-end regression values.

Pins the quickstart registration transform and a short urban-scene
odometry trajectory to stored golden values, so perf refactors (like
the streaming split) cannot silently change results.  Both scenarios
are fully seeded and deterministic; discrete outcomes (iteration
counts, correspondence counts, search-work counters) are compared
exactly, while floating-point values use a tight tolerance to absorb
last-ulp differences across BLAS/numpy builds.

Regenerate after an *intentional* accuracy change:

    PYTHONPATH=src python tests/integration/test_golden_values.py --regenerate
"""

import json
import os

import numpy as np
import pytest

from repro.geometry import metrics
from repro.io import make_sequence
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    run_odometry,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_values.json")
FLOAT_TOL = dict(rtol=1e-6, atol=1e-8)


# ----------------------------------------------------------------------
# The two pinned scenarios.
# ----------------------------------------------------------------------


def quickstart_scenario() -> dict:
    """The examples/quickstart.py registration, field for field."""
    sequence = make_sequence(n_frames=2, seed=42, step=1.0)
    source, target, ground_truth = sequence.pair(0)
    pipeline = Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(method="uniform", params={"voxel_size": 3.0}),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=25,
            ),
        )
    )
    result = pipeline.register(source, target)
    rot_err, trans_err = metrics.pair_errors(result.transformation, ground_truth)
    return {
        "transformation": result.transformation.tolist(),
        "initial_transformation": result.initial_transformation.tolist(),
        "rotation_error_deg": rot_err,
        "translation_error_m": trans_err,
        "icp_iterations": result.icp.iterations,
        "icp_rmse": result.icp.rmse,
        "icp_converged": result.icp.converged,
        "n_correspondences": result.icp.n_correspondences,
        "n_source_keypoints": result.n_source_keypoints,
        "n_target_keypoints": result.n_target_keypoints,
        "n_feature_correspondences": result.n_feature_correspondences,
        "n_inlier_correspondences": result.n_inlier_correspondences,
        "search_counters": {
            stage: [stats.queries, stats.nodes_visited, stats.results_returned]
            for stage, stats in result.stage_stats.items()
        },
    }


def odometry_scenario() -> dict:
    """A short urban-scene odometry run (4 frames, seeded pipeline)."""
    sequence = make_sequence(n_frames=4, seed=7, step=1.0, yaw_rate=0.01)
    pipeline = Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
            ),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=15,
            ),
            skip_initial_estimation=True,
        )
    )
    result = run_odometry(sequence, pipeline)
    return {
        "trajectory": [pose.tolist() for pose in result.trajectory],
        "relatives": [rel.tolist() for rel in result.relatives],
        "translational_percent": result.errors.translational_percent,
        "rotational_deg_per_m": result.errors.rotational,
        "per_pair_errors": [list(pair) for pair in result.per_pair_errors],
        "icp_iterations": [r.icp.iterations for r in result.pair_results],
        "rpce_queries": [
            r.stage_stats["RPCE"].queries for r in result.pair_results
        ],
    }


SCENARIOS = {
    "quickstart": quickstart_scenario,
    "odometry_urban": odometry_scenario,
}


# ----------------------------------------------------------------------
# Comparison: exact for ints/bools/str, tight tolerance for floats.
# ----------------------------------------------------------------------


def assert_matches(actual, golden, path=""):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: type changed"
        assert set(actual) == set(golden), f"{path}: keys changed"
        for key in golden:
            assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert len(actual) == len(golden), f"{path}: length changed"
        for i, (a, g) in enumerate(zip(actual, golden)):
            assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, bool) or isinstance(golden, (int, str)):
        assert actual == golden, f"{path}: {actual!r} != golden {golden!r}"
    else:
        np.testing.assert_allclose(
            actual, golden, err_msg=f"{path} drifted", **FLOAT_TOL
        )


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            f"golden file missing: {GOLDEN_PATH} — run this module with "
            "--regenerate to create it"
        )
    with open(GOLDEN_PATH, encoding="utf-8") as f:
        return json.load(f)


class TestGoldenValues:
    def test_quickstart_registration_pinned(self, golden):
        assert_matches(
            quickstart_scenario(), golden["quickstart"], "quickstart"
        )

    def test_urban_odometry_trajectory_pinned(self, golden):
        assert_matches(
            odometry_scenario(), golden["odometry_urban"], "odometry_urban"
        )


def regenerate() -> None:
    payload = {name: fn() for name, fn in SCENARIOS.items()}
    with open(GOLDEN_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regenerate", action="store_true", help="rewrite the golden file"
    )
    args = parser.parse_args()
    if args.regenerate:
        regenerate()
    else:
        parser.error("nothing to do; pass --regenerate")
