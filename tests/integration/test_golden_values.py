"""Golden end-to-end regression values.

Pins the quickstart registration transform, a short urban-scene
odometry trajectory, and a full ``urban_loop`` mapping run (keyframe
count, loop-closure edges, post-optimization trajectory) to stored
golden values, so perf refactors (like the streaming split) cannot
silently change results.  All scenarios are fully seeded and
deterministic; discrete outcomes (iteration counts, correspondence
counts, search-work counters) are compared exactly, while
floating-point values use a tight tolerance to absorb last-ulp
differences across BLAS/numpy builds.

Regenerate after an *intentional* accuracy change:

    PYTHONPATH=src python tests/integration/test_golden_values.py --regenerate

Re-pin history: the vectorized ragged-neighborhood kernels (PR 5)
assemble neighborhood covariances from chunked raw moments in
query-local coordinates instead of per-point mean-centered BLAS
matmuls.  Both formulations are deterministic and agree to ~1e-13,
but for a handful of grazing-angle points whose normal is
perpendicular to the viewpoint ray (orientation dot product ~1e-15)
the last-ulp difference flips the normal's *sign* tie-break.  In the
quickstart scenario that moved one RANSAC inlier (11 -> 10) and
shifted the KPCE/RPCE nodes_visited work counters by ~0.1%; the final
transform and errors changed at the 1e-12 level and every other
discrete outcome (iterations, keyframe schedule, loop edges) is
unchanged.  The golden file pins the segment-kernel rule.

Re-pin history: the vectorized canonical-tree traversal (PR 6)
unified the canonical KD-tree's tie rule with the bruteforce/batch
contract — nn/knn now keep the lexicographically smallest
(distance, index) pair instead of the first candidate the recursion
happened to visit, and squared distances accumulate per coordinate
(matching the batch kernels) instead of via ``diff @ diff``.  KPCE
searches 33-d FPFH descriptors with the canonical backend, where
identical local geometry manufactures exact descriptor-distance
ties; the unified rule flips a handful of tied correspondences
(verified index-for-index against bruteforce), moving one RANSAC
inlier (10 -> 11), the initial estimate at the 1e-5 level, the KPCE/
RPCE nodes_visited counters by <0.1%, and the final transform at the
1e-12 level.  The same PR also introduced nested-radius search reuse:
preprocess runs ONE all-points radius search at the largest planned
radius and derives every nested stage neighborhood by filtering the
cached CSR result — bit-identical artifacts (normals, keypoints,
descriptors; asserted by tests/registration/test_radius_reuse.py),
but honestly re-attributed work counters.  In the quickstart scenario
Normal Estimation now executes the inflated search (nodes_visited
1.02M -> 1.37M, results_returned counts the retained radius-1.0
neighborhoods) while Descriptor Calculation's 570k node visits drop
to zero (all queries served from the cache) — a net ~14% reduction in
counted distance computations and 3 of 4 search batches eliminated.
The odometry and mapping scenarios (skip_initial_estimation, where no
reuse is planned, and no KPCE descriptor search) are bit-unchanged.
"""

import json
import os

import numpy as np
import pytest

from repro.geometry import metrics
from repro.io import make_sequence
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    run_odometry,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_values.json")
FLOAT_TOL = dict(rtol=1e-6, atol=1e-8)


# ----------------------------------------------------------------------
# The two pinned scenarios.
# ----------------------------------------------------------------------


def quickstart_scenario() -> dict:
    """The examples/quickstart.py registration, field for field."""
    sequence = make_sequence(n_frames=2, seed=42, step=1.0)
    source, target, ground_truth = sequence.pair(0)
    pipeline = Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(method="uniform", params={"voxel_size": 3.0}),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=25,
            ),
        )
    )
    result = pipeline.register(source, target)
    rot_err, trans_err = metrics.pair_errors(result.transformation, ground_truth)
    return {
        "transformation": result.transformation.tolist(),
        "initial_transformation": result.initial_transformation.tolist(),
        "rotation_error_deg": rot_err,
        "translation_error_m": trans_err,
        "icp_iterations": result.icp.iterations,
        "icp_rmse": result.icp.rmse,
        "icp_converged": result.icp.converged,
        "n_correspondences": result.icp.n_correspondences,
        "n_source_keypoints": result.n_source_keypoints,
        "n_target_keypoints": result.n_target_keypoints,
        "n_feature_correspondences": result.n_feature_correspondences,
        "n_inlier_correspondences": result.n_inlier_correspondences,
        "search_counters": {
            stage: [stats.queries, stats.nodes_visited, stats.results_returned]
            for stage, stats in result.stage_stats.items()
        },
    }


def odometry_scenario() -> dict:
    """A short urban-scene odometry run (4 frames, seeded pipeline)."""
    sequence = make_sequence(n_frames=4, seed=7, step=1.0, yaw_rate=0.01)
    pipeline = Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
            ),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=15,
            ),
            skip_initial_estimation=True,
        )
    )
    result = run_odometry(sequence, pipeline)
    return {
        "trajectory": [pose.tolist() for pose in result.trajectory],
        "relatives": [rel.tolist() for rel in result.relatives],
        "translational_percent": result.errors.translational_percent,
        "rotational_deg_per_m": result.errors.rotational,
        "per_pair_errors": [list(pair) for pair in result.per_pair_errors],
        "icp_iterations": [r.icp.iterations for r in result.pair_results],
        "rpce_queries": [
            r.stage_stats["RPCE"].queries for r in result.pair_results
        ],
    }


def mapping_scenario() -> dict:
    """A full urban_loop SLAM run (48 frames, 2 laps, loop closure).

    Uses the shared reference configuration
    (:mod:`repro.mapping.presets`) of the mapping acceptance tests,
    bench, and example, pinning the subsystem end to end: the keyframe
    schedule, the loop-closure edges, the optimized trajectory, and the
    drift reduction itself.  The open-loop ATE comes from the mapper's
    own odometry chain (bit-identical to ``run_streaming_odometry`` —
    asserted in ``tests/mapping/``), so the sequence is registered once.
    """
    from repro.geometry import metrics
    from repro.io import SceneSuite, default_test_model
    from repro.mapping import (
        StreamingMapper,
        urban_loop_mapper_config,
        urban_loop_pipeline,
    )

    suite = SceneSuite.default(n_frames=48, model=default_test_model())
    sequence = suite.sequence("urban_loop")
    mapper = StreamingMapper(urban_loop_pipeline(), urban_loop_mapper_config())
    for frame in sequence.frames:
        mapper.push(frame)

    open_loop = metrics.trajectory_from_relative(mapper.odometry.relatives)
    stats = mapper.stats
    return {
        "n_keyframes": stats.n_keyframes,
        "keyframe_frames": [k.frame_index for k in mapper.keyframes],
        "n_loop_closures": stats.n_loop_closures,
        "loop_edges": [
            [c.target_index, c.source_index] for c in mapper.loop_closures
        ],
        "n_optimizations": stats.n_optimizations,
        "n_map_voxels": stats.n_map_voxels,
        "n_map_points": stats.n_map_points,
        "trajectory": [pose.tolist() for pose in mapper.trajectory()],
        "ate_open_loop_m": metrics.absolute_trajectory_error(
            open_loop, sequence.poses
        ),
        "ate_mapped_m": metrics.absolute_trajectory_error(
            mapper.trajectory(), sequence.poses
        ),
    }


SCENARIOS = {
    "quickstart": quickstart_scenario,
    "odometry_urban": odometry_scenario,
    "mapping_urban_loop": mapping_scenario,
}


# ----------------------------------------------------------------------
# Comparison: exact for ints/bools/str, tight tolerance for floats.
# ----------------------------------------------------------------------


def assert_matches(actual, golden, path=""):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: type changed"
        assert set(actual) == set(golden), f"{path}: keys changed"
        for key in golden:
            assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert len(actual) == len(golden), f"{path}: length changed"
        for i, (a, g) in enumerate(zip(actual, golden)):
            assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, bool) or isinstance(golden, (int, str)):
        assert actual == golden, f"{path}: {actual!r} != golden {golden!r}"
    else:
        np.testing.assert_allclose(
            actual, golden, err_msg=f"{path} drifted", **FLOAT_TOL
        )


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            f"golden file missing: {GOLDEN_PATH} — run this module with "
            "--regenerate to create it"
        )
    with open(GOLDEN_PATH, encoding="utf-8") as f:
        return json.load(f)


class TestGoldenValues:
    def test_quickstart_registration_pinned(self, golden):
        assert_matches(
            quickstart_scenario(), golden["quickstart"], "quickstart"
        )

    def test_urban_odometry_trajectory_pinned(self, golden):
        assert_matches(
            odometry_scenario(), golden["odometry_urban"], "odometry_urban"
        )

    def test_urban_loop_mapping_pinned(self, golden):
        assert_matches(
            mapping_scenario(),
            golden["mapping_urban_loop"],
            "mapping_urban_loop",
        )


def regenerate() -> None:
    payload = {name: fn() for name, fn in SCENARIOS.items()}
    with open(GOLDEN_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regenerate", action="store_true", help="rewrite the golden file"
    )
    args = parser.parse_args()
    if args.regenerate:
        regenerate()
    else:
        parser.error("nothing to do; pass --regenerate")
