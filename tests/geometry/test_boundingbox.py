"""Unit and property tests for axis-aligned bounding boxes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import AABB

finite_points = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.just(3)),
    elements=st.floats(-1e3, 1e3, allow_nan=False),
)


class TestConstruction:
    def test_of_points_is_tight(self):
        points = np.array([[0, 0, 0], [1, 2, 3], [-1, 5, 0.5]])
        box = AABB.of_points(points)
        assert np.array_equal(box.lo, [-1, 0, 0])
        assert np.array_equal(box.hi, [1, 5, 3])

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            AABB.of_points(np.empty((0, 3)))

    def test_infinite_contains_everything(self, rng):
        box = AABB.infinite(3)
        for point in rng.normal(scale=1e6, size=(5, 3)):
            assert box.contains(point)
            assert box.sq_distance_to(point) == 0.0

    def test_ndim(self):
        assert AABB.infinite(5).ndim == 5


class TestQueries:
    def test_contains_boundary(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.contains([0, 0, 0])
        assert box.contains([1, 1, 1])
        assert not box.contains([1.0001, 0.5, 0.5])

    def test_sq_distance_inside_is_zero(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.sq_distance_to([0.5, 0.5, 0.5]) == 0.0

    def test_sq_distance_axis_aligned(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.sq_distance_to([2.0, 0.5, 0.5]) == pytest.approx(1.0)

    def test_sq_distance_corner(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.sq_distance_to([2.0, 2.0, 2.0]) == pytest.approx(3.0)

    def test_sphere_intersection(self):
        box = AABB(np.zeros(3), np.ones(3))
        assert box.intersects_sphere(np.array([2.0, 0.5, 0.5]), 1.0)
        assert not box.intersects_sphere(np.array([2.0, 0.5, 0.5]), 0.99)

    @given(points=finite_points)
    def test_all_points_inside_own_box(self, points):
        box = AABB.of_points(points)
        for point in points:
            assert box.contains(point)
            assert box.sq_distance_to(point) == 0.0


class TestSplit:
    def test_split_partitions(self):
        box = AABB(np.zeros(3), np.ones(3))
        left, right = box.split(dim=0, value=0.25)
        assert left.hi[0] == 0.25
        assert right.lo[0] == 0.25
        assert left.contains([0.2, 0.5, 0.5])
        assert not left.contains([0.3, 0.5, 0.5])
        assert right.contains([0.3, 0.5, 0.5])

    def test_split_distance_never_decreases(self, rng):
        box = AABB(np.zeros(3), np.ones(3))
        left, right = box.split(1, 0.5)
        for point in rng.uniform(-2, 3, size=(30, 3)):
            parent = box.sq_distance_to(point)
            assert left.sq_distance_to(point) >= parent - 1e-12
            assert right.sq_distance_to(point) >= parent - 1e-12

    def test_split_children_cover_parent(self, rng):
        box = AABB(np.zeros(3), np.ones(3))
        left, right = box.split(2, 0.7)
        for point in rng.uniform(0, 1, size=(30, 3)):
            assert left.contains(point) or right.contains(point)
