"""Unit tests for SE(3) transform utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import se3

angles = st.floats(-np.pi, np.pi, allow_nan=False)
coords = st.floats(-100.0, 100.0, allow_nan=False)
vectors = st.tuples(coords, coords, coords).map(np.array)


class TestConstruction:
    def test_identity_is_4x4_eye(self):
        assert np.array_equal(se3.identity(), np.eye(4))

    def test_make_transform_layout(self):
        rotation = se3.rot_z(0.3)
        transform = se3.make_transform(rotation, [1.0, 2.0, 3.0])
        assert np.allclose(transform[:3, :3], rotation)
        assert np.allclose(transform[:3, 3], [1.0, 2.0, 3.0])
        assert np.allclose(transform[3], [0, 0, 0, 1])

    def test_make_transform_rejects_bad_rotation_shape(self):
        with pytest.raises(ValueError):
            se3.make_transform(np.eye(2), [0, 0, 0])

    def test_parts_roundtrip(self):
        transform = se3.make_transform(se3.rot_x(0.5), [4, 5, 6])
        assert np.allclose(se3.rotation_part(transform), se3.rot_x(0.5))
        assert np.allclose(se3.translation_part(transform), [4, 5, 6])

    def test_parts_return_copies(self):
        transform = se3.identity()
        se3.rotation_part(transform)[0, 0] = 99.0
        se3.translation_part(transform)[0] = 99.0
        assert np.array_equal(transform, np.eye(4))


class TestApply:
    def test_identity_leaves_points(self, rng):
        points = rng.normal(size=(10, 3))
        assert np.allclose(se3.apply_transform(se3.identity(), points), points)

    def test_pure_translation(self):
        transform = se3.make_transform(np.eye(3), [1, -2, 3])
        moved = se3.apply_transform(transform, np.zeros((4, 3)))
        assert np.allclose(moved, np.tile([1, -2, 3], (4, 1)))

    def test_single_point_shape(self):
        moved = se3.apply_transform(se3.identity(), np.array([1.0, 2.0, 3.0]))
        assert moved.shape == (3,)

    def test_rotation_preserves_norms(self, rng):
        transform = se3.make_transform(se3.random_rotation(rng), [0, 0, 0])
        points = rng.normal(size=(50, 3))
        moved = se3.apply_transform(transform, points)
        assert np.allclose(
            np.linalg.norm(moved, axis=1), np.linalg.norm(points, axis=1)
        )

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            se3.apply_transform(se3.identity(), np.zeros((3, 2)))


class TestComposeInvert:
    def test_compose_empty_is_identity(self):
        assert np.array_equal(se3.compose(), np.eye(4))

    def test_compose_order(self, rng):
        a = se3.random_transform(rng)
        b = se3.random_transform(rng)
        point = rng.normal(size=3)
        via_compose = se3.apply_transform(se3.compose(a, b), point)
        via_sequence = se3.apply_transform(a, se3.apply_transform(b, point))
        assert np.allclose(via_compose, via_sequence)

    def test_invert_roundtrip(self, rng):
        transform = se3.random_transform(rng)
        assert np.allclose(
            se3.compose(transform, se3.invert(transform)), np.eye(4), atol=1e-12
        )
        assert np.allclose(
            se3.compose(se3.invert(transform), transform), np.eye(4), atol=1e-12
        )

    def test_invert_matches_numpy(self, rng):
        transform = se3.random_transform(rng)
        assert np.allclose(se3.invert(transform), np.linalg.inv(transform))


class TestRotations:
    @given(angle=angles)
    def test_axis_rotations_are_valid(self, angle):
        for rotation in (se3.rot_x(angle), se3.rot_y(angle), se3.rot_z(angle)):
            assert se3.is_valid_rotation(rotation)

    def test_rot_z_quarter_turn(self):
        rotated = se3.rot_z(np.pi / 2) @ np.array([1.0, 0.0, 0.0])
        assert np.allclose(rotated, [0, 1, 0], atol=1e-12)

    @given(roll=angles, pitch=st.floats(-1.4, 1.4), yaw=angles)
    def test_euler_roundtrip(self, roll, pitch, yaw):
        rotation = se3.euler_to_rotation(roll, pitch, yaw)
        r2, p2, y2 = se3.rotation_to_euler(rotation)
        again = se3.euler_to_rotation(r2, p2, y2)
        assert np.allclose(rotation, again, atol=1e-9)

    def test_axis_angle_roundtrip(self, rng):
        for _ in range(20):
            axis = rng.normal(size=3)
            angle = rng.uniform(0.01, np.pi - 0.01)
            rotation = se3.axis_angle_to_rotation(axis, angle)
            recovered_axis, recovered_angle = se3.rotation_to_axis_angle(rotation)
            assert np.isclose(recovered_angle, angle, atol=1e-9)
            unit_axis = axis / np.linalg.norm(axis)
            assert np.allclose(recovered_axis, unit_axis, atol=1e-7)

    def test_axis_angle_zero_axis_gives_identity(self):
        assert np.allclose(se3.axis_angle_to_rotation([0, 0, 0], 1.0), np.eye(3))

    def test_rotation_angle_of_identity_is_zero(self):
        assert se3.rotation_angle(np.eye(3)) == 0.0

    def test_rotation_angle_matches_construction(self):
        assert np.isclose(se3.rotation_angle(se3.rot_y(0.7)), 0.7)

    def test_near_pi_axis_angle(self):
        rotation = se3.axis_angle_to_rotation([0, 0, 1], np.pi)
        axis, angle = se3.rotation_to_axis_angle(rotation)
        assert np.isclose(angle, np.pi, atol=1e-7)
        assert np.allclose(np.abs(axis), [0, 0, 1], atol=1e-6)

    def test_quaternion_roundtrip(self, rng):
        for _ in range(20):
            rotation = se3.random_rotation(rng)
            quaternion = se3.rotation_to_quaternion(rotation)
            assert np.isclose(np.linalg.norm(quaternion), 1.0)
            assert quaternion[0] >= 0
            assert np.allclose(se3.quaternion_to_rotation(quaternion), rotation)

    def test_quaternion_rejects_zero(self):
        with pytest.raises(ValueError):
            se3.quaternion_to_rotation([0, 0, 0, 0])

    def test_random_rotation_is_valid(self, rng):
        for _ in range(10):
            assert se3.is_valid_rotation(se3.random_rotation(rng))

    def test_orthonormalize_fixes_drift(self, rng):
        rotation = se3.random_rotation(rng) + rng.normal(scale=1e-4, size=(3, 3))
        cleaned = se3.orthonormalize_rotation(rotation)
        assert se3.is_valid_rotation(cleaned)

    def test_orthonormalize_handles_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        cleaned = se3.orthonormalize_rotation(reflection)
        assert se3.is_valid_rotation(cleaned)


class TestValidation:
    def test_valid_transform_accepts_rigid(self, rng):
        assert se3.is_valid_transform(se3.random_transform(rng))

    def test_rejects_scaled_rotation(self):
        assert not se3.is_valid_rotation(2.0 * np.eye(3))

    def test_rejects_bad_bottom_row(self):
        transform = se3.identity()
        transform[3, 0] = 0.1
        assert not se3.is_valid_transform(transform)

    def test_rejects_wrong_shape(self):
        assert not se3.is_valid_transform(np.eye(3))
        assert not se3.is_valid_rotation(np.eye(4))


class TestDistance:
    def test_distance_to_self_is_zero(self, rng):
        transform = se3.random_transform(rng)
        rot, trans = se3.transform_distance(transform, transform)
        # arccos((trace-1)/2) near angle 0 has ~sqrt(eps) precision.
        assert rot == pytest.approx(0.0, abs=1e-6)
        assert trans == pytest.approx(0.0, abs=1e-12)

    def test_distance_pure_translation(self):
        a = se3.identity()
        b = se3.make_transform(np.eye(3), [3, 4, 0])
        rot, trans = se3.transform_distance(a, b)
        assert rot == pytest.approx(0.0, abs=1e-12)
        assert trans == pytest.approx(5.0)

    def test_small_transform_is_small(self, rng):
        delta = se3.small_transform(rng, max_angle=0.01, max_translation=0.05)
        rot, trans = se3.transform_distance(np.eye(4), delta)
        assert rot <= 0.01 + 1e-9
        assert trans <= 0.05 * np.sqrt(3) + 1e-9


class TestLieMaps:
    """The se(3) exp/log maps the pose-graph optimizer perturbs through."""

    def test_skew_is_the_cross_product_matrix(self, rng):
        a = rng.normal(size=3)
        b = rng.normal(size=3)
        assert np.allclose(se3.skew(a) @ b, np.cross(a, b))
        assert np.allclose(se3.skew(a), -se3.skew(a).T)

    def test_exp_of_zero_is_identity(self):
        assert np.array_equal(se3.exp(np.zeros(6)), np.eye(4))

    def test_log_of_identity_is_zero(self):
        assert np.array_equal(se3.log(np.eye(4)), np.zeros(6))

    def test_exp_produces_valid_transforms(self, rng):
        for _ in range(20):
            twist = rng.normal(scale=2.0, size=6)
            assert se3.is_valid_transform(se3.exp(twist))

    def test_pure_translation_twist(self):
        transform = se3.exp([1.0, -2.0, 3.0, 0.0, 0.0, 0.0])
        assert np.allclose(transform[:3, :3], np.eye(3))
        assert np.allclose(transform[:3, 3], [1.0, -2.0, 3.0])

    def test_pure_rotation_twist_matches_axis_angle(self):
        twist = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 0.7])
        assert np.allclose(se3.exp(twist)[:3, :3], se3.rot_z(0.7))

    @given(st.integers(0, 2**32 - 1))
    def test_round_trip_exp_log(self, seed):
        gen = np.random.default_rng(seed)
        phi = gen.normal(size=3)
        phi *= gen.uniform(0.0, np.pi - 1e-6) / np.linalg.norm(phi)
        twist = np.concatenate([gen.normal(scale=5.0, size=3), phi])
        np.testing.assert_allclose(
            se3.log(se3.exp(twist)), twist, rtol=1e-6, atol=1e-8
        )

    def test_round_trip_log_exp(self, rng):
        for _ in range(20):
            transform = se3.random_transform(rng, max_translation=10.0)
            np.testing.assert_allclose(
                se3.exp(se3.log(transform)), transform, rtol=1e-7, atol=1e-8
            )

    def test_small_angle_stability(self, rng):
        """Tiny twists survive the round trip; naive arccos would zero them."""
        for scale in (1e-3, 1e-6, 1e-9, 1e-12):
            twist = rng.normal(size=6) * scale
            np.testing.assert_allclose(
                se3.log(se3.exp(twist)), twist, rtol=1e-6, atol=1e-16
            )

    def test_continuity_across_the_series_threshold(self):
        """exp is continuous where the Taylor branch takes over."""
        axis = np.array([1.0, 2.0, 2.0]) / 3.0
        below = se3.exp(np.concatenate([np.ones(3), axis * 0.9e-6]))
        above = se3.exp(np.concatenate([np.ones(3), axis * 1.1e-6]))
        assert np.allclose(below, above, atol=1e-6)

    def test_near_pi_round_trip(self, rng):
        axis = np.array([0.3, -0.5, 0.81])
        axis /= np.linalg.norm(axis)
        for angle in (np.pi - 1e-3, np.pi - 1e-6, 3.141592):
            twist = np.concatenate([rng.normal(size=3), axis * angle])
            transform = se3.exp(twist)
            np.testing.assert_allclose(
                se3.exp(se3.log(transform)), transform, rtol=1e-6, atol=1e-7
            )

    def test_log_inverts_composition_of_small_steps(self):
        """log(exp(a) @ exp(b)) ~ a + b to first order for small twists."""
        a = np.array([1e-4, 0, 0, 0, 1e-4, 0])
        b = np.array([0, 1e-4, 0, 0, 0, 1e-4])
        combined = se3.log(se3.compose(se3.exp(a), se3.exp(b)))
        np.testing.assert_allclose(combined, a + b, atol=1e-7)


def random_twist(rng, rotation_angle: float) -> np.ndarray:
    """A random twist with the given (exact) rotation magnitude."""
    phi = rng.normal(size=3)
    phi *= rotation_angle / np.linalg.norm(phi)
    return np.concatenate([rng.normal(scale=2.0, size=3), phi])


def numeric_left_jacobian_inv(twist: np.ndarray, h: float = 1e-6) -> np.ndarray:
    """Central differences on log(exp(delta) exp(twist)) around delta=0."""
    jac = np.empty((6, 6))
    for axis in range(6):
        delta = np.zeros(6)
        delta[axis] = h
        plus = se3.log(se3.compose(se3.exp(delta), se3.exp(twist)))
        minus = se3.log(se3.compose(se3.exp(-delta), se3.exp(twist)))
        jac[:, axis] = (plus - minus) / (2.0 * h)
    return jac


class TestSE3Jacobians:
    """The 6x6 adjoint / left-Jacobian helpers the pose-graph back end
    builds its analytic edge linearization on, pinned against central
    differences (the seed optimizer's Jacobian construction)."""

    # Rotation magnitudes covering the series branch, the generic closed
    # form, and the near-pi regime where naive forms degrade.
    ANGLES = [1e-12, 1e-8, 1e-7, 1e-4, 0.3, 1.5, 2.9, np.pi - 1e-3]

    def test_adjoint_carries_twists_across_frames(self, rng):
        """T exp(xi) T^-1 == exp(Ad(T) xi), exactly (not just first order)."""
        for _ in range(20):
            transform = se3.random_transform(rng, max_translation=5.0)
            twist = rng.normal(scale=0.4, size=6)
            lhs = se3.compose(
                transform, se3.exp(twist), se3.invert(transform)
            )
            np.testing.assert_allclose(
                lhs, se3.exp(se3.adjoint(transform) @ twist), atol=1e-12
            )

    def test_adjoint_of_identity(self):
        assert np.array_equal(se3.adjoint(se3.identity()), np.eye(6))

    def test_adjoint_of_inverse_is_inverse_adjoint(self, rng):
        transform = se3.random_transform(rng, max_translation=3.0)
        np.testing.assert_allclose(
            se3.adjoint(se3.invert(transform)),
            np.linalg.inv(se3.adjoint(transform)),
            atol=1e-10,
        )

    def test_adjoint_is_multiplicative(self, rng):
        a = se3.random_transform(rng)
        b = se3.random_transform(rng)
        np.testing.assert_allclose(
            se3.adjoint(se3.compose(a, b)),
            se3.adjoint(a) @ se3.adjoint(b),
            atol=1e-12,
        )

    def test_left_jacobian_inv_matches_central_differences(self, rng):
        """The 1e-6 parity bar of ISSUE 7, across all angle regimes."""
        for angle in self.ANGLES:
            for _ in range(5):
                twist = random_twist(rng, angle)
                np.testing.assert_allclose(
                    se3.left_jacobian_inv(twist),
                    numeric_left_jacobian_inv(twist),
                    atol=1e-6,
                    err_msg=f"angle={angle}",
                )

    def test_left_jacobian_inverts_left_jacobian_inv(self, rng):
        for angle in self.ANGLES:
            twist = random_twist(rng, angle)
            np.testing.assert_allclose(
                se3.left_jacobian(twist) @ se3.left_jacobian_inv(twist),
                np.eye(6),
                atol=1e-9,
                err_msg=f"angle={angle}",
            )

    def test_left_jacobian_of_zero_is_identity(self):
        assert np.allclose(se3.left_jacobian(np.zeros(6)), np.eye(6))
        assert np.allclose(se3.left_jacobian_inv(np.zeros(6)), np.eye(6))

    def test_left_jacobian_first_order_property(self, rng):
        """exp(xi + d) ~ exp(J_l(xi) d) exp(xi) for small d."""
        twist = random_twist(rng, 1.2)
        delta = rng.normal(scale=1e-5, size=6)
        lhs = se3.exp(twist + delta)
        rhs = se3.compose(
            se3.exp(se3.left_jacobian(twist) @ delta), se3.exp(twist)
        )
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    def test_continuity_across_the_q_series_threshold(self):
        """The Q-matrix series branch matches the closed form at 1e-6."""
        rho = np.array([1.0, -2.0, 3.0])
        axis = np.array([2.0, -1.0, 2.0]) / 3.0
        below = se3.left_jacobian(np.concatenate([rho, axis * 0.9e-6]))
        above = se3.left_jacobian(np.concatenate([rho, axis * 1.1e-6]))
        np.testing.assert_allclose(below, above, atol=1e-5)
