"""Unit tests for the KITTI-style registration metrics."""

import numpy as np
import pytest

from repro.geometry import metrics, se3


def straight_trajectory(n: int, step: float = 1.0) -> list[np.ndarray]:
    return [se3.make_transform(np.eye(3), [i * step, 0, 0]) for i in range(n)]


class TestPairErrors:
    def test_exact_estimate_has_zero_error(self, rng):
        gt = se3.random_transform(rng)
        rot, trans = metrics.pair_errors(gt, gt)
        # arccos-based angle extraction has ~sqrt(eps) precision at 0.
        assert rot == pytest.approx(0.0, abs=1e-5)
        assert trans == pytest.approx(0.0, abs=1e-12)

    def test_translation_offset_reported_in_meters(self):
        gt = se3.identity()
        est = se3.make_transform(np.eye(3), [0.3, 0.4, 0.0])
        rot, trans = metrics.pair_errors(est, gt)
        assert trans == pytest.approx(0.5)
        assert rot == pytest.approx(0.0, abs=1e-12)

    def test_rotation_offset_reported_in_degrees(self):
        est = se3.make_transform(se3.rot_z(np.radians(10)), [0, 0, 0])
        rot, _ = metrics.pair_errors(est, se3.identity())
        assert rot == pytest.approx(10.0)


class TestTrajectories:
    def test_chain_and_unchain_roundtrip(self, rng):
        relatives = [se3.small_transform(rng, 0.1, 0.5) for _ in range(5)]
        trajectory = metrics.trajectory_from_relative(relatives)
        assert len(trajectory) == 6
        recovered = metrics.relative_from_trajectory(trajectory)
        for original, back in zip(relatives, recovered):
            assert np.allclose(original, back, atol=1e-12)

    def test_distances_accumulate(self):
        trajectory = straight_trajectory(5, step=2.0)
        distances = metrics.trajectory_distances(trajectory)
        assert np.allclose(distances, [0, 2, 4, 6, 8])


class TestSequenceErrors:
    def test_perfect_odometry_scores_zero(self):
        trajectory = straight_trajectory(50)
        errors = metrics.kitti_sequence_errors(trajectory, trajectory)
        assert errors.translational == pytest.approx(0.0, abs=1e-12)
        assert errors.rotational == pytest.approx(0.0, abs=1e-12)

    def test_constant_drift_scales_with_rate(self):
        gt = straight_trajectory(60)
        # Estimated trajectory drifts 2% along x (0.98 m per 1 m step).
        est = [se3.make_transform(np.eye(3), [0.98 * i, 0, 0]) for i in range(60)]
        errors = metrics.kitti_sequence_errors(est, gt)
        assert errors.translational == pytest.approx(0.02, rel=1e-6)
        assert errors.translational_percent == pytest.approx(2.0, rel=1e-6)

    def test_rotational_drift_measured_per_meter(self):
        n = 80
        gt = straight_trajectory(n)
        yaw_per_frame = np.radians(0.1)  # 0.1 deg per 1 m
        est = [
            se3.make_transform(se3.rot_z(yaw_per_frame * i), [i, 0, 0])
            for i in range(n)
        ]
        errors = metrics.kitti_sequence_errors(est, gt)
        assert errors.rotational == pytest.approx(0.1, rel=0.05)

    def test_short_sequences_scale_ladder(self):
        # 10 m long path, far below the 100 m KITTI lengths.
        trajectory = straight_trajectory(11)
        errors = metrics.kitti_sequence_errors(trajectory, trajectory)
        assert errors.translational == pytest.approx(0.0, abs=1e-12)
        assert len(errors.samples) > 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            metrics.kitti_sequence_errors(
                straight_trajectory(3), straight_trajectory(4)
            )

    def test_single_pose_rejected(self):
        single = straight_trajectory(1)
        with pytest.raises(ValueError):
            metrics.kitti_sequence_errors(single, single)

    def test_stationary_trajectory_rejected(self):
        still = [se3.identity() for _ in range(5)]
        with pytest.raises(ValueError):
            metrics.kitti_sequence_errors(still, still)

    def test_error_bars_available(self):
        gt = straight_trajectory(40)
        rng = np.random.default_rng(0)
        est = [
            se3.make_transform(np.eye(3), [i + rng.normal(0, 0.01), 0, 0])
            for i in range(40)
        ]
        errors = metrics.kitti_sequence_errors(est, gt)
        assert errors.translational_std_percent() >= 0.0
        assert len(errors.samples) > 1


class TestPointMetrics:
    def test_rmse_zero_for_identical(self, rng):
        points = rng.normal(size=(20, 3))
        assert metrics.rmse(points, points) == 0.0

    def test_rmse_known_value(self):
        a = np.zeros((4, 3))
        b = np.tile([1.0, 0, 0], (4, 1))
        assert metrics.rmse(a, b) == pytest.approx(1.0)

    def test_rmse_empty(self):
        empty = np.empty((0, 3))
        assert metrics.rmse(empty, empty) == 0.0

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ValueError):
            metrics.rmse(np.zeros((3, 3)), np.zeros((4, 3)))

    def test_fitness_counts_inliers(self):
        a = np.zeros((4, 3))
        b = np.array([[0.1, 0, 0], [0.2, 0, 0], [5.0, 0, 0], [0.05, 0, 0]])
        assert metrics.fitness(a, b, inlier_threshold=0.5) == pytest.approx(0.75)

    def test_fitness_empty_is_zero(self):
        empty = np.empty((0, 3))
        assert metrics.fitness(empty, empty, 1.0) == 0.0
