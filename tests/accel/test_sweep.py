"""Unit tests for the hardware and top-height sweep drivers."""

import numpy as np
import pytest

from repro.accel import (
    build_workload,
    sweep_hardware,
    sweep_top_height,
)


@pytest.fixture(scope="module")
def small_workloads():
    rng = np.random.default_rng(6)
    points = rng.normal(size=(300, 3)) * 4.0
    queries = rng.normal(size=(60, 3)) * 4.0
    return [build_workload(points, queries, kind="nn", leaf_size=16)]


class TestHardwareSweep:
    def test_grid_size(self, small_workloads):
        sweep = sweep_hardware(
            small_workloads,
            ru_values=(8, 32),
            su_values=(8, 32),
            pe_values=(8, 32),
        )
        assert len(sweep.results) == 8

    def test_best_is_minimum_time(self, small_workloads):
        sweep = sweep_hardware(
            small_workloads, ru_values=(8, 64), su_values=(8,), pe_values=(8,)
        )
        _, best = sweep.best()
        assert best.time_seconds == min(
            r.time_seconds for r in sweep.results.values()
        )

    def test_pareto_nonempty_and_non_dominated(self, small_workloads):
        sweep = sweep_hardware(
            small_workloads,
            ru_values=(8, 32),
            su_values=(8, 32),
            pe_values=(8,),
        )
        frontier = sweep.pareto()
        assert frontier
        for key in frontier:
            mine = sweep.results[key]
            for other in sweep.results.values():
                if other is mine:
                    continue
                assert not (
                    other.time_seconds < mine.time_seconds
                    and other.power_watts < mine.power_watts
                )

    def test_table_contains_all_configs(self, small_workloads):
        sweep = sweep_hardware(
            small_workloads, ru_values=(8,), su_values=(8,), pe_values=(8, 16)
        )
        text = sweep.table()
        assert "8" in text and "16" in text


class TestHeightSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        rng = np.random.default_rng(7)
        source = rng.normal(size=(250, 3)) * 4.0
        target = rng.normal(size=(250, 3)) * 4.0
        return sweep_top_height(
            source, target, heights=(1, 3, 5, 7), icp_iterations=1,
            normal_radius=0.8,
        )

    def test_all_heights_present(self, sweep):
        assert set(sweep.results) == {1, 3, 5, 7}

    def test_optimal_is_minimum(self, sweep):
        best = sweep.optimal_height
        assert sweep.results[best].time_seconds == min(
            r.time_seconds for r in sweep.results.values()
        )

    def test_extremes_bound_behaviour(self, sweep):
        # Height 1: huge leaf sets -> backend-bound.
        assert sweep.results[1].bound == "backend"
        # Height 7 on 250 points: leaf ~2 -> frontend-bound.
        assert sweep.results[7].bound == "frontend"

    def test_table_format(self, sweep):
        text = sweep.table()
        assert "height" in text
        assert "bound" in text
