"""Unit tests for the end-to-end speedup/power coupling."""

import pytest

from repro.accel import EndToEndModel, SystemPhase, amdahl_speedup


class TestAmdahl:
    def test_no_acceleration(self):
        assert amdahl_speedup(0.5, 1.0) == pytest.approx(1.0)

    def test_full_fraction(self):
        assert amdahl_speedup(1.0, 10.0) == pytest.approx(10.0)

    def test_paper_dp7_magnitude(self):
        """~60-80 % search fraction at ~77x search speedup gives the
        paper's ~1.4-1.7x (41.7 %) end-to-end improvement band... for
        fractions around 0.3-0.45 of *end-to-end GPU-system* time."""
        # 41.7% speedup = 1.417x overall => f/(1 - 1/1.417) with s→inf
        # means f ≈ 0.294 of the baseline was search time on the GPU.
        speedup = amdahl_speedup(0.30, 77.2)
        assert 1.35 < speedup < 1.45

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2.0)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0.0)


class TestSystemPhase:
    def test_energy(self):
        assert SystemPhase(2.0, 10.0).joules == pytest.approx(20.0)


class TestEndToEndModel:
    def test_phase_split(self):
        model = EndToEndModel(kdtree_fraction=0.6, baseline_total_seconds=10.0)
        assert model.baseline_search_seconds == pytest.approx(6.0)
        assert model.other_seconds == pytest.approx(4.0)

    def test_infinite_speedup_bounded_by_amdahl(self):
        model = EndToEndModel(kdtree_fraction=0.6, baseline_total_seconds=10.0)
        speedup, _ = model.speedup_over_baseline(
            search_speedup=1e9,
            baseline_search_watts=185.0,
            accelerated_search_watts=25.0,
        )
        assert speedup == pytest.approx(1.0 / 0.4, rel=1e-3)

    def test_speedup_matches_amdahl(self):
        model = EndToEndModel(kdtree_fraction=0.55, baseline_total_seconds=3.0)
        speedup, _ = model.speedup_over_baseline(77.2, 185.0, 27.0)
        assert speedup == pytest.approx(amdahl_speedup(0.55, 77.2), rel=1e-9)

    def test_power_reduction_direction(self):
        model = EndToEndModel(kdtree_fraction=0.6, baseline_total_seconds=10.0)
        _, power_reduction = model.speedup_over_baseline(77.0, 185.0, 27.0)
        assert power_reduction > 1.0

    def test_paper_band(self):
        """With a Fig. 4b-style fraction and Fig. 11 speedup, the
        end-to-end gains land in the paper's ballpark (1.4x / ~3x)."""
        model = EndToEndModel(kdtree_fraction=0.55, baseline_total_seconds=1.5)
        speedup, power_reduction = model.speedup_over_baseline(
            77.2, 185.0, 27.0
        )
        assert 1.5 < speedup < 2.5
        assert 1.5 < power_reduction < 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EndToEndModel(kdtree_fraction=0.0, baseline_total_seconds=1.0)
        with pytest.raises(ValueError):
            EndToEndModel(kdtree_fraction=0.5, baseline_total_seconds=0.0)
        model = EndToEndModel(kdtree_fraction=0.5, baseline_total_seconds=1.0)
        with pytest.raises(ValueError):
            model.system(-1.0, 10.0)
