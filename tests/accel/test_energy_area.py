"""Unit tests for the energy and area models."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    AreaParameters,
    EnergyParameters,
    TrafficCounters,
    estimate_area,
    estimate_energy,
)


class TestTrafficCounters:
    def test_merge(self):
        a = TrafficCounters(points_buffer=10, query_stack=5)
        b = TrafficCounters(points_buffer=3, dram=7)
        a.merge(b)
        assert a.points_buffer == 13
        assert a.query_stack == 5
        assert a.dram == 7

    def test_distribution_sums_to_one(self):
        traffic = TrafficCounters(
            fe_query_queue=10, query_buffer=20, query_stack=30,
            points_buffer=25, node_cache=5, be_query_buffer=5, result_buffer=5,
        )
        distribution = traffic.distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert TrafficCounters().distribution() == {}

    def test_reads_writes_split(self):
        traffic = TrafficCounters(query_stack=100)
        reads, writes = traffic.reads_writes("query_stack")
        assert reads + writes == 100
        assert writes == 50  # stacks are half push, half pop

    def test_query_buffer_is_read_only(self):
        traffic = TrafficCounters(query_buffer=40)
        reads, writes = traffic.reads_writes("query_buffer")
        assert reads == 40
        assert writes == 0


class TestEnergyModel:
    def test_zero_activity_zero_dynamic(self):
        breakdown = estimate_energy(
            TrafficCounters(), 0, 0.0, AcceleratorConfig()
        )
        assert breakdown.pe_compute == 0.0
        assert breakdown.sram_read == 0.0
        assert breakdown.total == 0.0

    def test_compute_scales_linearly(self):
        config = AcceleratorConfig()
        one = estimate_energy(TrafficCounters(), 1000, 0.0, config)
        two = estimate_energy(TrafficCounters(), 2000, 0.0, config)
        assert two.pe_compute == pytest.approx(2 * one.pe_compute)

    def test_leakage_scales_with_time(self):
        config = AcceleratorConfig()
        short = estimate_energy(TrafficCounters(), 0, 1e-3, config)
        long = estimate_energy(TrafficCounters(), 0, 2e-3, config)
        assert long.leakage == pytest.approx(2 * short.leakage)

    def test_fractions_sum_to_one(self):
        traffic = TrafficCounters(
            points_buffer=1000, query_stack=500, result_buffer=200, dram=50
        )
        breakdown = estimate_energy(traffic, 5000, 1e-5, AcceleratorConfig())
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_custom_parameters(self):
        params = EnergyParameters(distance_computation_pj=1000.0)
        breakdown = estimate_energy(
            TrafficCounters(), 100, 0.0, AcceleratorConfig(), params
        )
        assert breakdown.pe_compute == pytest.approx(100 * 1000e-12)


class TestAreaModel:
    def test_paper_design_point(self):
        """Sec. 6.2: 8.38 mm^2 SRAM + 7.19 mm^2 logic, 53.8 % / 46.2 %."""
        report = estimate_area(AcceleratorConfig())
        assert report.sram_mm2 == pytest.approx(8.38, rel=0.01)
        assert report.logic_mm2 == pytest.approx(7.19, rel=0.01)
        assert report.sram_fraction == pytest.approx(0.538, abs=0.005)
        assert report.logic_fraction == pytest.approx(0.462, abs=0.005)

    def test_logic_scales_with_units(self):
        small = estimate_area(AcceleratorConfig(n_search_units=16, pes_per_su=16))
        large = estimate_area(AcceleratorConfig(n_search_units=64, pes_per_su=64))
        assert large.logic_mm2 > small.logic_mm2

    def test_sram_scales_with_buffers(self):
        small = estimate_area(AcceleratorConfig(result_buffer_kb=1024.0))
        large = estimate_area(AcceleratorConfig(result_buffer_kb=4096.0))
        assert large.sram_mm2 > small.sram_mm2

    def test_custom_parameters(self):
        params = AreaParameters(sram_mm2_per_kb=0.001, datapath_mm2_per_unit=0.01)
        report = estimate_area(AcceleratorConfig(), params)
        assert report.total_mm2 > 0
