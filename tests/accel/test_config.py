"""Unit tests for the accelerator configuration."""

import pytest

from repro.accel import AcceleratorConfig, BackEndConfig, FrontEndConfig


class TestFrontEndConfig:
    def test_forwarding_eliminates_stalls(self):
        assert FrontEndConfig(forwarding=True).full_node_cycles == 1
        assert FrontEndConfig(forwarding=False).full_node_cycles == 4

    def test_bypassing_shortens_pruned_nodes(self):
        no_opt = FrontEndConfig(bypassing=False, forwarding=False)
        bypass = FrontEndConfig(bypassing=True, forwarding=False)
        both = FrontEndConfig(bypassing=True, forwarding=True)
        assert no_opt.bypassed_node_cycles == no_opt.full_node_cycles
        assert bypass.bypassed_node_cycles < no_opt.bypassed_node_cycles
        assert both.bypassed_node_cycles <= bypass.bypassed_node_cycles


class TestBackEndConfig:
    def test_scheduling_validation(self):
        with pytest.raises(ValueError):
            BackEndConfig(scheduling="bogus")

    def test_cache_validation(self):
        with pytest.raises(ValueError):
            BackEndConfig(node_cache_entries=-1)


class TestAcceleratorConfig:
    def test_paper_design_point_defaults(self):
        config = AcceleratorConfig()
        assert config.n_recursion_units == 64
        assert config.n_search_units == 32
        assert config.pes_per_su == 32
        assert config.total_pes == 1024
        assert config.clock_ghz == pytest.approx(0.5)
        assert config.cycle_time_ns == pytest.approx(2.0)

    def test_buffer_sizing_matches_paper(self):
        """Sec. 6.2 sizing: 1.5 MB point/query buffers, 1.2 MB stacks,
        3 MB result buffer, 128 KB node cache, 1 KB BQB per SU."""
        config = AcceleratorConfig()
        assert config.input_point_buffer_kb == pytest.approx(1536.0)
        assert config.query_stack_buffer_kb == pytest.approx(1228.8)
        assert config.result_buffer_kb == pytest.approx(3072.0)
        assert config.node_cache_kb == pytest.approx(128.0)
        assert config.leader_buffer_entries == 16
        # ~8.7 MB of SRAM total.
        assert 8500 < config.total_sram_kb < 9500

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(n_recursion_units=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(clock_ghz=0.0)
