"""Unit tests for the front-end (RU) and back-end (SU) timing models."""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    BackEndConfig,
    FrontEndConfig,
    build_workload,
    simulate_backend,
    simulate_frontend,
)
from repro.accel.frontend import query_frontend_cycles
from repro.core.trace import LeafVisitRecord, QueryTrace


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2)
    points = rng.normal(size=(400, 3)) * 4.0
    queries = rng.normal(size=(120, 3)) * 4.0
    return build_workload(points, queries, kind="nn", leaf_size=32)


class TestFrontEndCycles:
    def test_single_query_cost_formula(self):
        trace = QueryTrace(toptree_visits=10, toptree_bypassed=4)
        trace.leaf_visits = [LeafVisitRecord(leaf_id=0), LeafVisitRecord(leaf_id=1)]
        config = AcceleratorConfig()  # forwarding + bypassing
        # 1 (FQ) + 10 * 1 + 4 * 1 + 2 (CL issues)
        assert query_frontend_cycles(trace, config) == 17

    def test_no_opt_costs_more(self):
        trace = QueryTrace(toptree_visits=10, toptree_bypassed=4)
        fast = AcceleratorConfig()
        slow = AcceleratorConfig(
            frontend=FrontEndConfig(bypassing=False, forwarding=False)
        )
        assert query_frontend_cycles(trace, slow) > query_frontend_cycles(
            trace, fast
        )

    def test_more_rus_reduce_makespan(self, workload):
        few = simulate_frontend(workload, AcceleratorConfig(n_recursion_units=4))
        many = simulate_frontend(workload, AcceleratorConfig(n_recursion_units=64))
        assert many.cycles < few.cycles
        # Total busy work is invariant to the RU count.
        assert many.busy_cycles == few.busy_cycles

    def test_utilization_bounded(self, workload):
        report = simulate_frontend(workload, AcceleratorConfig())
        assert 0.0 < report.utilization <= 1.0

    def test_traffic_populated(self, workload):
        report = simulate_frontend(workload, AcceleratorConfig())
        assert report.traffic.fe_query_queue == 2 * workload.n_queries
        assert report.traffic.query_buffer == workload.n_queries
        assert report.traffic.query_stack > 0
        assert report.traffic.points_buffer == workload.total_toptree_visits

    def test_optimizations_speed_up_frontend(self, workload):
        variants = {
            "no_opt": FrontEndConfig(bypassing=False, forwarding=False),
            "bypass": FrontEndConfig(bypassing=True, forwarding=False),
            "forward": FrontEndConfig(bypassing=True, forwarding=True),
        }
        cycles = {
            name: simulate_frontend(
                workload, AcceleratorConfig(frontend=fe)
            ).cycles
            for name, fe in variants.items()
        }
        assert cycles["no_opt"] > cycles["bypass"] > cycles["forward"]


class TestBackEnd:
    def test_more_pes_reduce_cycles(self, workload):
        few = simulate_backend(workload, AcceleratorConfig(pes_per_su=4))
        many = simulate_backend(workload, AcceleratorConfig(pes_per_su=64))
        assert many.cycles <= few.cycles

    def test_more_sus_reduce_cycles(self, workload):
        few = simulate_backend(workload, AcceleratorConfig(n_search_units=2))
        many = simulate_backend(workload, AcceleratorConfig(n_search_units=32))
        assert many.cycles <= few.cycles

    def test_compute_equals_scans_plus_checks(self, workload):
        report = simulate_backend(workload, AcceleratorConfig())
        expected = workload.total_leaf_scanned + workload.total_leader_checks
        assert report.distance_computations == expected

    def test_mqmn_at_least_as_fast_but_more_traffic(self, workload):
        mqsn = simulate_backend(
            workload,
            AcceleratorConfig(backend=BackEndConfig(scheduling="mqsn")),
        )
        mqmn = simulate_backend(
            workload,
            AcceleratorConfig(backend=BackEndConfig(scheduling="mqmn")),
        )
        assert mqmn.cycles <= mqsn.cycles
        assert (
            mqmn.traffic.points_buffer + mqmn.traffic.node_cache
            >= mqsn.traffic.points_buffer + mqsn.traffic.node_cache
        )

    def test_node_cache_reduces_points_traffic(self, workload):
        # Few SUs so each one interleaves several leaf sets — the reuse
        # pattern the cache exists for (with one leaf per SU every set
        # is fetched exactly once and nothing can hit).
        cached = simulate_backend(
            workload,
            AcceleratorConfig(
                n_search_units=2,
                backend=BackEndConfig(node_cache_entries=16),
            ),
        )
        uncached = simulate_backend(
            workload,
            AcceleratorConfig(
                n_search_units=2,
                backend=BackEndConfig(node_cache_entries=0),
            ),
        )
        assert cached.traffic.points_buffer < uncached.traffic.points_buffer
        assert uncached.node_cache_hits == 0
        assert cached.node_cache_hits > 0
        # The cache moves traffic, never destroys it.
        assert (
            cached.traffic.points_buffer + cached.traffic.node_cache
            == uncached.traffic.points_buffer + uncached.traffic.node_cache
        )

    def test_pruned_visits_do_not_reach_backend(self, workload):
        report = simulate_backend(workload, AcceleratorConfig())
        active_visits = sum(
            len(t.active_leaf_visits) for t in workload.traces
        )
        assert report.traffic.be_query_buffer == active_visits

    def test_utilization_bounded(self, workload):
        report = simulate_backend(workload, AcceleratorConfig())
        assert 0.0 < report.utilization <= 1.0
