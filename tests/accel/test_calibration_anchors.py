"""Calibration-anchor regression tests.

The baseline models and energy constants were calibrated so the
paper's headline ratios reproduce on the reference workload (DESIGN.md
substitution table).  These tests pin the anchors: if a future change
to the simulator, the traces, or the constants drifts them, this file
fails before the benchmarks do.
"""

import numpy as np
import pytest

from repro.accel import (
    CPUModel,
    GPUModel,
    TigrisSimulator,
    estimate_area,
    registration_workload,
)
from repro.accel.config import AcceleratorConfig


@pytest.fixture(scope="module")
def reference(lidar_pair):
    """The calibration workload: DP7-style searches on the seed-3 pair."""
    source, target, _ = lidar_pair
    kwargs = dict(normal_radius=0.75, icp_iterations=5)
    return {
        "2skd": registration_workload(
            source.points, target.points, leaf_size=128, **kwargs
        ),
        "kd": registration_workload(
            source.points, target.points, leaf_size=1, **kwargs
        ),
    }


class TestAnchors:
    def test_speedup_anchor(self, reference):
        """Paper: Acc-2SKD is 77.2x over Base-2SKD on DP7."""
        accel = TigrisSimulator().simulate_many(list(reference["2skd"].values()))
        gpu = sum(
            GPUModel().run(w).time_seconds for w in reference["2skd"].values()
        )
        speedup = gpu / accel.time_seconds
        assert 70 < speedup < 90

    def test_gpu_structure_anchor(self, reference):
        """Paper: Base-2SKD is ~1.28x faster than Base-KD on the GPU."""
        gpu = GPUModel()
        base_kd = sum(gpu.run(w).time_seconds for w in reference["kd"].values())
        base_2skd = sum(gpu.run(w).time_seconds for w in reference["2skd"].values())
        assert 1.15 < base_kd / base_2skd < 1.45

    def test_gpu_vs_cpu_anchor(self, reference):
        """Paper: GPU KD-tree search is 8-20x the CPU's."""
        cpu_time = sum(
            CPUModel().run(w).time_seconds for w in reference["kd"].values()
        )
        gpu_time = sum(
            GPUModel().run(w).time_seconds for w in reference["kd"].values()
        )
        assert 5 < cpu_time / gpu_time < 25

    def test_power_reduction_anchor(self, reference):
        """Paper: ~7x power reduction over the GPU on DP7."""
        accel = TigrisSimulator().simulate_many(list(reference["2skd"].values()))
        reduction = GPUModel().power_watts / accel.power_watts
        assert 5 < reduction < 10

    def test_power_band_anchor(self, reference):
        """Paper Fig. 14a: the accelerator operates in the 4-36 W band."""
        accel = TigrisSimulator().simulate_many(list(reference["2skd"].values()))
        assert 4 < accel.power_watts < 40

    def test_energy_share_ordering(self, reference):
        """Paper DP4 breakdown ordering: PE > read > write > leak > DRAM
        (leakage/DRAM may swap at small scale; the compute/memory
        ordering is the pinned part)."""
        accel = TigrisSimulator().simulate_many(list(reference["2skd"].values()))
        fractions = accel.energy.fractions()
        assert (
            fractions["PE"]
            > fractions["SRAM read"]
            > fractions["SRAM write"]
            > fractions["DRAM"]
        )

    def test_area_anchor(self):
        """Paper Sec. 6.2: 8.38 + 7.19 mm^2 at 53.8 % / 46.2 %."""
        report = estimate_area(AcceleratorConfig())
        assert report.sram_mm2 == pytest.approx(8.38, rel=0.02)
        assert report.logic_mm2 == pytest.approx(7.19, rel=0.02)

    def test_clock_anchor(self):
        """Paper Sec. 6.1: the datapath clocks at 500 MHz."""
        assert AcceleratorConfig().clock_ghz == pytest.approx(0.5)

    def test_trace_determinism(self, reference):
        """The calibration workload itself must be reproducible."""
        nodes = sum(w.total_nodes_visited for w in reference["2skd"].values())
        assert nodes > 1_000_000  # the reference workload's scale
        again = TigrisSimulator().simulate_many(list(reference["2skd"].values()))
        once = TigrisSimulator().simulate_many(list(reference["2skd"].values()))
        assert again.cycles == once.cycles
