"""Unit + behaviour tests for the full Tigris simulator and baselines."""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    CPUModel,
    GPUModel,
    TigrisSimulator,
    build_workload,
)
from repro.core import ApproximateSearchConfig


@pytest.fixture(scope="module")
def scene_workloads():
    rng = np.random.default_rng(4)
    points = rng.normal(size=(500, 3)) * 5.0
    queries = rng.normal(size=(200, 3)) * 5.0
    two_stage = build_workload(points, queries, kind="nn", leaf_size=64,
                               name="2skd")
    canonical = build_workload(points, queries, kind="nn", leaf_size=1,
                               name="kd")
    return two_stage, canonical


class TestSimulator:
    def test_result_fields_consistent(self, scene_workloads):
        two_stage, _ = scene_workloads
        result = TigrisSimulator().simulate(two_stage)
        assert result.cycles > 0
        assert result.time_seconds == pytest.approx(
            result.cycles * 2e-9  # 500 MHz
        )
        assert result.energy_joules > 0
        assert result.power_watts > 0
        assert result.bound in ("frontend", "backend")

    def test_cycles_at_least_slower_half(self, scene_workloads):
        two_stage, _ = scene_workloads
        result = TigrisSimulator().simulate(two_stage)
        assert result.cycles >= max(result.frontend.cycles, result.backend.cycles)

    def test_canonical_tree_is_frontend_bound(self, scene_workloads):
        """Paper Sec. 6.3: Acc-KD is bottlenecked by the recursive
        top-tree search while the SUs sit nearly idle."""
        _, canonical = scene_workloads
        result = TigrisSimulator().simulate(canonical)
        assert result.bound == "frontend"
        assert result.backend.cycles < result.frontend.cycles / 2

    def test_two_stage_beats_canonical_on_accelerator(self, scene_workloads):
        """The co-design argument: the accelerator needs the two-stage
        structure to use its back-end."""
        two_stage, canonical = scene_workloads
        simulator = TigrisSimulator()
        fast = simulator.simulate(two_stage)
        slow = simulator.simulate(canonical)
        assert fast.time_seconds < slow.time_seconds

    def test_approximate_reduces_time_and_energy(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(500, 3)) * 5.0
        # One warm-up pass establishes leaders; later passes follow.
        queries = np.tile(points[:100], (4, 1))
        exact = build_workload(points, queries, kind="nn", leaf_size=64)
        approx = build_workload(
            points, queries, kind="nn", leaf_size=64,
            approx=ApproximateSearchConfig(),
        )
        simulator = TigrisSimulator()
        exact_result = simulator.simulate(exact)
        approx_result = simulator.simulate(approx)
        assert approx_result.time_seconds <= exact_result.time_seconds
        assert approx_result.energy_joules < exact_result.energy_joules

    def test_simulate_many_sums(self, scene_workloads):
        two_stage, canonical = scene_workloads
        simulator = TigrisSimulator()
        combined = simulator.simulate_many([two_stage, canonical])
        separate = simulator.simulate(two_stage), simulator.simulate(canonical)
        assert combined.cycles == separate[0].cycles + separate[1].cycles
        assert combined.energy_joules == pytest.approx(
            separate[0].energy_joules + separate[1].energy_joules
        )

    def test_simulate_many_rejects_empty(self):
        with pytest.raises(ValueError):
            TigrisSimulator().simulate_many([])

    def test_more_hardware_is_faster(self, scene_workloads):
        two_stage, _ = scene_workloads
        small = TigrisSimulator(
            AcceleratorConfig(n_recursion_units=16, n_search_units=4, pes_per_su=4)
        ).simulate(two_stage)
        large = TigrisSimulator(
            AcceleratorConfig(n_recursion_units=64, n_search_units=32, pes_per_su=32)
        ).simulate(two_stage)
        assert large.time_seconds < small.time_seconds


class TestBaselines:
    def test_cpu_time_proportional_to_work(self, scene_workloads):
        two_stage, canonical = scene_workloads
        cpu = CPUModel()
        t1 = cpu.run(canonical).time_seconds
        t2 = cpu.run(two_stage).time_seconds
        ratio = t2 / t1
        expected = two_stage.total_nodes_visited / canonical.total_nodes_visited
        assert ratio == pytest.approx(expected, rel=1e-6)

    def test_gpu_two_stage_faster_than_canonical(self, scene_workloads):
        """Paper Sec. 6.3: Base-2SKD is ~28 % faster than Base-KD on the
        GPU — coalesced leaf scans beat divergent traversal."""
        two_stage, canonical = scene_workloads
        gpu = GPUModel()
        assert gpu.run(two_stage).time_seconds < gpu.run(canonical).time_seconds

    def test_gpu_faster_than_cpu(self, scene_workloads):
        """Paper Sec. 6.1: GPU KD-tree search is ~8-20x the CPU's."""
        _, canonical = scene_workloads
        speedup = (
            CPUModel().run(canonical).time_seconds
            / GPUModel().run(canonical).time_seconds
        )
        assert 4.0 < speedup < 40.0

    def test_accelerator_beats_gpu(self, scene_workloads):
        two_stage, _ = scene_workloads
        accelerator = TigrisSimulator().simulate(two_stage)
        gpu = GPUModel().run(two_stage)
        assert accelerator.time_seconds < gpu.time_seconds
        assert accelerator.power_watts < gpu.power_watts

    def test_device_report_energy(self):
        from repro.accel import DeviceReport

        report = DeviceReport(name="x", time_seconds=2.0, power_watts=10.0)
        assert report.energy_joules == pytest.approx(20.0)
