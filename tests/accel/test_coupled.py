"""Tests for the event-coupled FE/BE simulation."""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    build_workload,
    simulate_backend,
    simulate_coupled,
    simulate_frontend,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(9)
    points = rng.normal(size=(400, 3)) * 4.0
    queries = rng.normal(size=(150, 3)) * 4.0
    return build_workload(points, queries, kind="nn", leaf_size=32)


@pytest.fixture(scope="module")
def canonical_workload():
    rng = np.random.default_rng(9)
    points = rng.normal(size=(400, 3)) * 4.0
    queries = rng.normal(size=(150, 3)) * 4.0
    return build_workload(points, queries, kind="nn", leaf_size=1)


class TestCoupledBounds:
    def test_at_least_each_half(self, workload):
        config = AcceleratorConfig()
        coupled = simulate_coupled(workload, config)
        fe = simulate_frontend(workload, config)
        assert coupled.total_cycles >= fe.cycles
        assert coupled.total_cycles >= coupled.backend_finish
        assert coupled.frontend_cycles == fe.cycles

    def test_at_most_serial_sum(self, workload):
        """The coupled run can never exceed running FE fully, then BE."""
        config = AcceleratorConfig()
        coupled = simulate_coupled(workload, config)
        fe = simulate_frontend(workload, config)
        be = simulate_backend(workload, config)
        assert coupled.total_cycles <= fe.cycles + be.cycles + len(workload.traces)

    def test_deterministic(self, workload):
        config = AcceleratorConfig()
        a = simulate_coupled(workload, config)
        b = simulate_coupled(workload, config)
        assert a.total_cycles == b.total_cycles


class TestStarvation:
    def test_slow_frontend_starves_backend(self, workload):
        """With one RU, leaf visits trickle in and the SUs idle —
        the coupled model must show it."""
        slow = AcceleratorConfig(n_recursion_units=1)
        coupled = simulate_coupled(workload, slow)
        assert coupled.backend_idle_cycles > 0
        # The run becomes front-end limited: the back-end finishes within
        # one final batch drain of the last front-end issue.
        max_leaf = int(max(v.scanned for t in workload.traces
                           for v in t.leaf_visits))
        assert coupled.total_cycles <= coupled.frontend_cycles + max_leaf + 8

    def test_fast_frontend_keeps_backend_busy(self, workload):
        fast = AcceleratorConfig(n_recursion_units=256)
        slow = AcceleratorConfig(n_recursion_units=1)
        assert (
            simulate_coupled(workload, fast).total_cycles
            < simulate_coupled(workload, slow).total_cycles
        )

    def test_canonical_tree_backend_near_idle(self, canonical_workload):
        """Acc-KD behaviour: almost no exhaustive work arrives."""
        coupled = simulate_coupled(canonical_workload, AcceleratorConfig())
        assert coupled.backend_finish < coupled.frontend_cycles

    def test_starvation_fraction_bounded(self, workload):
        coupled = simulate_coupled(workload, AcceleratorConfig())
        assert 0.0 <= coupled.starvation_fraction <= 1.0


class TestSchedulingModes:
    def test_mqmn_runs(self, workload):
        from repro.accel import BackEndConfig

        config = AcceleratorConfig(backend=BackEndConfig(scheduling="mqmn"))
        coupled = simulate_coupled(workload, config)
        assert coupled.total_cycles > 0
