"""Property-based tests for the accelerator model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    AcceleratorConfig,
    BackEndConfig,
    FrontEndConfig,
    TigrisSimulator,
    build_workload,
)


@st.composite
def workload_and_config(draw):
    seed = draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(10, 150))
    n_queries = draw(st.integers(1, 40))
    points = rng.normal(size=(n, 3)) * 4.0
    queries = rng.normal(size=(n_queries, 3)) * 4.0
    kind = draw(st.sampled_from(["nn", "radius"]))
    leaf_size = draw(st.sampled_from([1, 4, 16, 64]))
    workload = build_workload(
        points, queries, kind=kind, radius=1.0, leaf_size=leaf_size
    )
    config = AcceleratorConfig(
        n_recursion_units=draw(st.sampled_from([1, 8, 64])),
        n_search_units=draw(st.sampled_from([1, 8, 32])),
        pes_per_su=draw(st.sampled_from([1, 8, 32])),
        frontend=FrontEndConfig(
            bypassing=draw(st.booleans()), forwarding=draw(st.booleans())
        ),
        backend=BackEndConfig(
            scheduling=draw(st.sampled_from(["mqsn", "mqmn"])),
            node_cache_entries=draw(st.sampled_from([0, 4, 16])),
        ),
    )
    return workload, config


@given(data=workload_and_config())
@settings(max_examples=20)
def test_simulation_invariants(data):
    """For any workload and any hardware configuration:
    time/energy/power positive; cycles bounded below by busy work per
    unit; utilizations in (0, 1]."""
    workload, config = data
    result = TigrisSimulator(config).simulate(workload)
    assert result.cycles > 0
    assert result.time_seconds > 0
    assert result.energy_joules > 0
    assert result.power_watts > 0
    fe = result.frontend
    assert fe.cycles * config.n_recursion_units >= fe.busy_cycles
    assert 0 <= fe.utilization <= 1.0
    be = result.backend
    assert 0 <= be.utilization <= 1.0
    assert result.cycles >= max(fe.cycles, be.cycles)


@given(data=workload_and_config())
@settings(max_examples=15)
def test_traffic_conservation(data):
    """Node-stream traffic either hits the cache or the points buffer —
    the total is invariant to the cache size."""
    workload, config = data
    with_cache = TigrisSimulator(config).simulate(workload)
    no_cache_config = AcceleratorConfig(
        n_recursion_units=config.n_recursion_units,
        n_search_units=config.n_search_units,
        pes_per_su=config.pes_per_su,
        frontend=config.frontend,
        backend=BackEndConfig(
            scheduling=config.backend.scheduling, node_cache_entries=0
        ),
    )
    without_cache = TigrisSimulator(no_cache_config).simulate(workload)
    assert (
        with_cache.traffic.points_buffer + with_cache.traffic.node_cache
        == without_cache.traffic.points_buffer + without_cache.traffic.node_cache
    )


@given(data=workload_and_config())
@settings(max_examples=15)
def test_energy_fractions_partition(data):
    workload, config = data
    result = TigrisSimulator(config).simulate(workload)
    fractions = result.energy.fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    assert all(v >= 0 for v in fractions.values())


@given(seed=st.integers(0, 100))
@settings(max_examples=10)
def test_determinism(seed):
    """Identical workloads and configs must simulate identically."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(100, 3))
    queries = rng.normal(size=(20, 3))
    workload = build_workload(points, queries, kind="nn", leaf_size=16)
    a = TigrisSimulator().simulate(workload)
    b = TigrisSimulator().simulate(workload)
    assert a.cycles == b.cycles
    assert a.energy_joules == b.energy_joules
