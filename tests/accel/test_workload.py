"""Unit tests for functional workload tracing."""

import numpy as np
import pytest

from repro.accel import build_workload, registration_workload
from repro.core import ApproximateSearchConfig, TwoStageKDTree


@pytest.fixture
def points(rng):
    return rng.normal(size=(300, 3)) * 3.0


@pytest.fixture
def queries(rng):
    return rng.normal(size=(50, 3)) * 3.0


class TestBuildWorkload:
    def test_nn_workload_counts(self, points, queries):
        workload = build_workload(points, queries, kind="nn", leaf_size=32)
        assert workload.n_queries == 50
        assert workload.total_nodes_visited > 0
        assert workload.total_results == 50
        assert not workload.approximate

    def test_radius_workload(self, points, queries):
        workload = build_workload(
            points, queries, kind="radius", radius=1.0, leaf_size=32
        )
        assert workload.kind == "radius"
        assert workload.total_results >= 0
        assert workload.total_leaf_scanned > 0

    def test_leaf_size_one_mimics_canonical(self, points, queries):
        workload = build_workload(points, queries, kind="nn", leaf_size=1)
        # Nearly all visits are top-tree traversal, not leaf scans.
        assert workload.total_toptree_visits > workload.total_leaf_scanned

    def test_top_height_parameter(self, points, queries):
        workload = build_workload(points, queries, kind="nn", top_height=2)
        assert workload.top_height == 2
        assert workload.n_leaf_sets <= 4

    def test_prebuilt_tree(self, points, queries):
        tree = TwoStageKDTree(points, top_height=3)
        workload = build_workload(points, queries, kind="nn", tree=tree)
        assert workload.top_height == 3

    def test_approximate_reduces_visits(self, points):
        # Clustered queries so followers actually fire.
        queries = np.repeat(points[:25], 4, axis=0)
        exact = build_workload(points, queries, kind="nn", leaf_size=64)
        approx = build_workload(
            points, queries, kind="nn", leaf_size=64,
            approx=ApproximateSearchConfig(),
        )
        assert approx.approximate
        assert (
            approx.total_nodes_visited + approx.total_leader_checks
            < exact.total_nodes_visited
        )

    def test_kind_validation(self, points, queries):
        with pytest.raises(ValueError):
            build_workload(points, queries, kind="bogus")

    def test_needs_structure_parameter(self, points, queries):
        with pytest.raises(ValueError):
            build_workload(points, queries, kind="nn", leaf_size=None)

    def test_merge(self, points, queries):
        tree = TwoStageKDTree(points, top_height=3)
        a = build_workload(points, queries, kind="nn", tree=tree)
        b = build_workload(points, queries[:10], kind="nn", tree=tree)
        merged = a.merge(b)
        assert merged.n_queries == 60
        assert merged.total_nodes_visited == (
            a.total_nodes_visited + b.total_nodes_visited
        )

    def test_merge_rejects_different_trees(self, points, queries):
        a = build_workload(points, queries, kind="nn", top_height=2)
        b = build_workload(points, queries, kind="nn", top_height=4)
        with pytest.raises(ValueError):
            a.merge(b)


class TestRegistrationWorkload:
    def test_stage_mix(self, rng):
        source = rng.normal(size=(200, 3)) * 5.0
        target = rng.normal(size=(210, 3)) * 5.0
        workloads = registration_workload(
            source, target, normal_radius=0.8, icp_iterations=3, leaf_size=32
        )
        assert set(workloads) == {"NE", "RPCE"}
        ne, rpce = workloads["NE"], workloads["RPCE"]
        assert ne.kind == "radius"
        assert rpce.kind == "nn"
        # NE queries both clouds once; RPCE queries the source 3 times.
        assert ne.n_queries == 410
        assert rpce.n_queries == 600

    def test_redundancy_vs_leaf_size(self, rng):
        """The Fig. 6 trend at workload level: more redundancy with
        bigger leaf sets."""
        source = rng.normal(size=(150, 3)) * 5.0
        target = rng.normal(size=(150, 3)) * 5.0

        def visits(leaf_size):
            workloads = registration_workload(
                source, target, icp_iterations=2, leaf_size=leaf_size
            )
            return sum(w.total_nodes_visited for w in workloads.values())

        assert visits(64) > visits(8) > visits(1)
