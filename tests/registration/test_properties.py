"""Property-based tests for registration invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import se3
from repro.registration import kabsch, levenberg_marquardt, point_to_plane


@st.composite
def rigid_problem(draw):
    """Random correspondences related by a random rigid transform."""
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = draw(st.integers(4, 40))
    source = rng.normal(size=(n, 3)) * draw(st.floats(0.5, 10.0))
    angle = draw(st.floats(0.0, 3.0))
    transform = se3.make_transform(
        se3.axis_angle_to_rotation(rng.normal(size=3), angle),
        rng.uniform(-5, 5, size=3),
    )
    return source, se3.apply_transform(transform, source), transform


class TestKabschProperties:
    @given(problem=rigid_problem())
    def test_exact_recovery(self, problem):
        source, target, transform = problem
        estimate = kabsch(source, target)
        rot, trans = se3.transform_distance(transform, estimate)
        # Degenerate (collinear) draws may admit multiple optima; the
        # residual is the invariant that must always hold.
        moved = se3.apply_transform(estimate, source)
        assert np.allclose(moved, target, atol=1e-6)
        assert se3.is_valid_transform(estimate)
        # For well-spread clouds the transform itself is unique.
        spread = np.linalg.svd(source - source.mean(axis=0), compute_uv=False)
        if spread[-1] > 1e-3:
            assert rot < 1e-5
            assert trans < 1e-5

    @given(problem=rigid_problem())
    @settings(max_examples=15)
    def test_permutation_invariance(self, problem):
        source, target, _ = problem
        rng = np.random.default_rng(0)
        order = rng.permutation(len(source))
        direct = kabsch(source, target)
        permuted = kabsch(source[order], target[order])
        assert np.allclose(direct, permuted, atol=1e-9)

    @given(problem=rigid_problem(), scale=st.floats(0.1, 10.0))
    @settings(max_examples=15)
    def test_weight_scale_invariance(self, problem, scale):
        source, target, _ = problem
        weights = np.ones(len(source))
        a = kabsch(source, target, weights)
        b = kabsch(source, target, weights * scale)
        assert np.allclose(a, b, atol=1e-9)


class TestSolverAgreement:
    @given(problem=rigid_problem())
    @settings(max_examples=10)
    def test_lm_matches_kabsch_on_clean_data(self, problem):
        source, target, _ = problem
        closed_form = kabsch(source, target)
        iterative = levenberg_marquardt(source, target, max_iterations=60)
        residual_cf = np.linalg.norm(
            se3.apply_transform(closed_form, source) - target
        )
        residual_lm = np.linalg.norm(
            se3.apply_transform(iterative, source) - target
        )
        # LM must reach (essentially) the global optimum Kabsch finds.
        assert residual_lm <= residual_cf + 1e-4

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10)
    def test_point_to_plane_zero_residual_on_consistent_input(self, seed):
        rng = np.random.default_rng(seed)
        source = rng.normal(size=(50, 3)) * 3.0
        normals = rng.normal(size=(50, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        small = se3.make_transform(
            se3.axis_angle_to_rotation(rng.normal(size=3), 0.01),
            rng.uniform(-0.02, 0.02, size=3),
        )
        target = se3.apply_transform(small, source)
        estimate = point_to_plane(source, target, normals)
        moved = se3.apply_transform(estimate, source)
        residuals = np.einsum("ij,ij->i", moved - target, normals)
        assert np.sqrt(np.mean(residuals**2)) < 1e-4
