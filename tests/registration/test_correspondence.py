"""Unit tests for KPCE (feature-space) and RPCE (3D) correspondence."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import PointCloud
from repro.registration import (
    Correspondences,
    KPCEConfig,
    RPCEConfig,
    SearchConfig,
    build_searcher,
    estimate_feature_correspondences,
    estimate_point_correspondences,
)


class TestCorrespondencesContainer:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            Correspondences(
                np.array([0, 1]), np.array([0]), np.array([0.1, 0.2])
            )

    def test_select_by_mask(self):
        corr = Correspondences(
            np.array([0, 1, 2]),
            np.array([5, 6, 7]),
            np.array([0.1, 0.2, 0.3]),
            np.array([0.2, 0.4, 0.6]),
        )
        subset = corr.select(np.array([True, False, True]))
        assert len(subset) == 2
        assert list(subset.target_indices) == [5, 7]
        assert list(subset.second_distances) == [0.2, 0.6]


class TestKPCE:
    def test_identical_features_match_identity(self, rng):
        features = rng.normal(size=(20, 33))
        corr = estimate_feature_correspondences(
            features, features, KPCEConfig(reciprocal=False)
        )
        assert np.array_equal(corr.source_indices, np.arange(20))
        assert np.array_equal(corr.target_indices, np.arange(20))
        assert np.allclose(corr.distances, 0.0)

    def test_permuted_features_recovered(self, rng):
        features = rng.normal(size=(15, 8))
        perm = rng.permutation(15)
        corr = estimate_feature_correspondences(
            features, features[perm], KPCEConfig(reciprocal=False)
        )
        # target row j holds source feature perm[j]; match must invert it.
        for s, t in zip(corr.source_indices, corr.target_indices):
            assert perm[t] == s

    def test_reciprocal_filters_asymmetric(self, rng):
        source = np.array([[0.0], [10.0]])
        # Target has a cluster near 0: 0 -> nearest target, but that
        # target's nearest source is still 0; 10 -> far target.
        target = np.array([[0.1], [0.2], [50.0]])
        corr = estimate_feature_correspondences(
            source, target, KPCEConfig(reciprocal=True)
        )
        assert len(corr) <= 2
        assert 0 in corr.source_indices

    def test_with_second_distances(self, rng):
        features = rng.normal(size=(10, 5))
        corr = estimate_feature_correspondences(
            features,
            features,
            KPCEConfig(reciprocal=False, with_second=True),
        )
        assert corr.second_distances is not None
        assert np.all(corr.second_distances >= corr.distances)

    def test_bruteforce_backend_agrees_with_kdtree(self, rng):
        source = rng.normal(size=(12, 16))
        target = rng.normal(size=(18, 16))
        kd = estimate_feature_correspondences(
            source, target, KPCEConfig(reciprocal=False, backend="canonical")
        )
        bf = estimate_feature_correspondences(
            source, target, KPCEConfig(reciprocal=False, backend="bruteforce")
        )
        assert np.array_equal(kd.target_indices, bf.target_indices)

    def test_empty_inputs(self):
        corr = estimate_feature_correspondences(
            np.empty((0, 4)), np.empty((0, 4))
        )
        assert len(corr) == 0

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            KPCEConfig(backend="gpu")


@pytest.fixture
def target_setup(rng):
    points = rng.normal(size=(200, 3)) * 4.0
    searcher = build_searcher(points, SearchConfig())
    return points, searcher


class TestRPCENearest:
    def test_matches_are_nearest(self, target_setup, rng):
        target_points, searcher = target_setup
        source = rng.normal(size=(30, 3)) * 4.0
        corr = estimate_point_correspondences(source, searcher, RPCEConfig())
        for s, t, d in zip(corr.source_indices, corr.target_indices, corr.distances):
            dists = np.linalg.norm(target_points - source[s], axis=1)
            assert d == pytest.approx(dists.min(), abs=1e-9)
            assert dists[t] == pytest.approx(dists.min(), abs=1e-9)

    def test_max_distance_gates(self, target_setup):
        target_points, searcher = target_setup
        source = np.array([[100.0, 100.0, 100.0], [0.0, 0.0, 0.0]])
        corr = estimate_point_correspondences(
            source, searcher, RPCEConfig(max_distance=5.0)
        )
        assert 0 not in corr.source_indices
        assert 1 in corr.source_indices

    def test_empty_source(self, target_setup):
        _, searcher = target_setup
        corr = estimate_point_correspondences(np.empty((0, 3)), searcher)
        assert len(corr) == 0

    def test_reciprocal_mode(self, target_setup, rng):
        target_points, searcher = target_setup
        source = target_points[:40] + rng.normal(scale=0.01, size=(40, 3))
        source_searcher = build_searcher(source, SearchConfig())
        corr = estimate_point_correspondences(
            source,
            searcher,
            RPCEConfig(reciprocal=True),
            source_searcher=source_searcher,
        )
        # Jittered subsets are mutually nearest: nearly all pairs survive.
        assert len(corr) > 30


class TestRPCENormalShooting:
    def test_prefers_point_along_normal(self, rng):
        # Target: two points — one straight along the source normal but
        # slightly farther, one nearer but off-axis.
        target = np.array([[0.0, 0.0, 1.0], [0.6, 0.0, 0.0]])
        searcher = build_searcher(target, SearchConfig())
        source = np.array([[0.0, 0.0, 0.0]])
        normals = np.array([[0.0, 0.0, 1.0]])
        corr = estimate_point_correspondences(
            source,
            searcher,
            RPCEConfig(method="normal_shooting", k_candidates=2),
            source_normals=normals,
        )
        assert corr.target_indices[0] == 0

    def test_requires_normals(self, target_setup, rng):
        _, searcher = target_setup
        with pytest.raises(ValueError, match="normals"):
            estimate_point_correspondences(
                rng.normal(size=(5, 3)),
                searcher,
                RPCEConfig(method="normal_shooting"),
            )


class TestRPCEProjection:
    def test_projection_on_lidar_frame(self, lidar_pair):
        source, target, gt = lidar_pair
        searcher = build_searcher(target.points, SearchConfig())
        moved = se3.apply_transform(gt, source.points[:300])
        corr = estimate_point_correspondences(
            moved,
            searcher,
            RPCEConfig(method="projection", max_distance=2.0),
            target_cloud=target,
        )
        assert len(corr) > 100
        # Projected matches must be within the gate by construction.
        assert np.all(corr.distances <= 2.0)

    def test_requires_image_or_cloud(self, target_setup, rng):
        _, searcher = target_setup
        with pytest.raises(ValueError, match="projection requires"):
            estimate_point_correspondences(
                rng.normal(size=(5, 3)),
                searcher,
                RPCEConfig(method="projection"),
            )


class TestRPCEValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RPCEConfig(method="bogus")
        with pytest.raises(ValueError):
            RPCEConfig(max_distance=0.0)
        with pytest.raises(ValueError):
            RPCEConfig(k_candidates=0)
