"""Streaming odometry must be bit-identical to the pair-by-pair driver.

The per-frame/pairwise split behind :class:`StreamingOdometry` is a
pure refactor of computation *order*: preprocessing a frame once and
reusing its artifacts across two pairs must produce exactly the same
relatives, trajectory, and per-pair search-work counters as preprocessing
it twice.  These tests enforce that property across the four synthetic
scenes and multiple search backends; the multi-scene sweep carries the
``slow`` marker (run with the full CI job, deselect with ``-m "not
slow"``).
"""

import numpy as np
import pytest

from repro.io import (
    highway_scene,
    intersection_scene,
    make_sequence,
    room_scene,
    urban_scene,
)
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
    StreamingOdometry,
    run_odometry,
    run_streaming_odometry,
)

SCENES = ("urban", "highway", "intersection", "room")
BACKENDS = ("twostage", "bruteforce")


def scene_sequence(name: str, n_frames: int = 3, seed: int = 5):
    """A short sequence through the named synthetic scene."""
    rng = np.random.default_rng(seed)
    step = 1.0
    if name == "urban":
        scene = urban_scene(rng, length=120.0)
    elif name == "highway":
        scene = highway_scene(rng, length=160.0)
    elif name == "intersection":
        scene = intersection_scene(rng)
    else:
        scene = room_scene()
        step = 0.3  # stay well inside the 10 m room
    return make_sequence(n_frames=n_frames, seed=seed, scene=scene, step=step)


def quick_pipeline(backend: str = "twostage", **overrides) -> Pipeline:
    config = PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
        ),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=2.0),
            error_metric="point_to_plane",
            max_iterations=10,
        ),
        voxel_downsample=1.0,
        search=SearchConfig(backend=backend),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return Pipeline(config)


def assert_runs_identical(uncached, streaming):
    """Bitwise equality of everything the ISSUE pins: relatives,
    trajectory, and per-pair stage stats."""
    assert uncached.n_pairs == streaming.n_pairs
    for a, b in zip(uncached.relatives, streaming.relatives):
        assert np.array_equal(a, b)
    for a, b in zip(uncached.trajectory, streaming.trajectory):
        assert np.array_equal(a, b)
    for ra, rb in zip(uncached.pair_results, streaming.pair_results):
        assert ra.stage_stats == rb.stage_stats
        assert np.array_equal(ra.initial_transformation, rb.initial_transformation)
        assert ra.icp.iterations == rb.icp.iterations
        assert ra.icp.rmse == rb.icp.rmse
        assert ra.n_source_keypoints == rb.n_source_keypoints
        assert ra.n_feature_correspondences == rb.n_feature_correspondences
        assert ra.n_inlier_correspondences == rb.n_inlier_correspondences
    if uncached.errors is not None:
        assert uncached.errors.translational == streaming.errors.translational
        assert uncached.errors.rotational == streaming.errors.rotational


class TestStreamingBitIdentity:
    def test_matches_pairwise_fast(self, lidar_sequence):
        """The always-on guard: one scene, default backend, seeded."""
        pipeline = quick_pipeline()
        uncached = run_odometry(lidar_sequence, pipeline)
        streaming = run_streaming_odometry(lidar_sequence, pipeline)
        assert_runs_identical(uncached, streaming)

    def test_matches_pairwise_unseeded(self, lidar_sequence):
        """Without the constant-velocity prior every pair runs the full
        front end — the heaviest reuse path (features hand over too)."""
        pipeline = quick_pipeline()
        uncached = run_odometry(
            lidar_sequence, pipeline, seed_with_previous=False
        )
        streaming = run_streaming_odometry(
            lidar_sequence, pipeline, seed_with_previous=False
        )
        assert_runs_identical(uncached, streaming)

    @pytest.mark.slow
    @pytest.mark.parametrize("scene", SCENES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_pairwise_all_scenes(self, scene, backend):
        sequence = scene_sequence(scene)
        pipeline = quick_pipeline(backend=backend)
        uncached = run_odometry(sequence, pipeline)
        streaming = run_streaming_odometry(sequence, pipeline)
        assert_runs_identical(uncached, streaming)

    @pytest.mark.slow
    @pytest.mark.parametrize("scene", ("urban", "room"))
    def test_full_front_end_all_pairs(self, scene):
        """Initial estimation on every pair exercises keypoint and
        descriptor handoff between consecutive pairs."""
        sequence = scene_sequence(scene)
        pipeline = quick_pipeline()
        uncached = run_odometry(sequence, pipeline, seed_with_previous=False)
        streaming = run_streaming_odometry(
            sequence, pipeline, seed_with_previous=False
        )
        assert_runs_identical(uncached, streaming)

    def test_skip_initial_estimation_mode(self, lidar_sequence):
        pipeline = quick_pipeline(skip_initial_estimation=True)
        uncached = run_odometry(lidar_sequence, pipeline)
        streaming = run_streaming_odometry(lidar_sequence, pipeline)
        assert_runs_identical(uncached, streaming)


class TestStreamingEngine:
    def test_push_protocol(self, lidar_sequence):
        engine = StreamingOdometry(quick_pipeline())
        assert engine.n_frames == 0
        assert engine.push(lidar_sequence.frames[0]) is None
        assert engine.n_frames == 1
        assert engine.n_pairs == 0
        result = engine.push(lidar_sequence.frames[1])
        assert result is not None
        assert result.success
        assert engine.n_pairs == 1
        assert len(engine.pair_seconds) == 1

    def test_result_requires_two_frames(self, lidar_sequence):
        engine = StreamingOdometry(quick_pipeline())
        with pytest.raises(ValueError):
            engine.result()
        engine.push(lidar_sequence.frames[0])
        with pytest.raises(ValueError):
            engine.result()

    def test_state_handoff(self, lidar_sequence):
        """Pair k's source FrameState becomes pair k+1's target."""
        engine = StreamingOdometry(quick_pipeline())
        engine.push(lidar_sequence.frames[0])
        first_state = engine.target_state
        engine.push(lidar_sequence.frames[1])
        second_state = engine.target_state
        assert second_state is not first_state
        engine.push(lidar_sequence.frames[2])
        # The state cached after pair k is reused as pair k+1's target:
        # no re-preprocess happened for that frame (object identity).
        assert engine.target_state is not second_state

    def test_preprocess_happens_once_per_frame(self, lidar_sequence):
        """The whole point: n frames cost n preprocesses, not 2(n-1).

        Counted via tree-construction charges: the streaming profiler
        must record exactly one build per frame (plus per-iteration
        rebuilds RPCE itself performs, absent in this config)."""
        pipeline = quick_pipeline(skip_initial_estimation=True)
        n = len(lidar_sequence.frames)
        uncached = run_odometry(lidar_sequence, pipeline)
        streaming = run_streaming_odometry(lidar_sequence, pipeline)
        # Normal Estimation stage entries: one per preprocess.
        uncached_calls = uncached.profiler.stages["Normal Estimation"].calls
        streaming_calls = streaming.profiler.stages["Normal Estimation"].calls
        assert uncached_calls == 2 * (n - 1)
        assert streaming_calls == n

    def test_result_is_snapshot(self, lidar_sequence):
        """Later pushes must not mutate an already-returned result."""
        engine = StreamingOdometry(quick_pipeline())
        engine.push(lidar_sequence.frames[0])
        engine.push(lidar_sequence.frames[1])
        early = engine.result(lidar_sequence.poses[:2])
        early_total = early.profiler.total
        engine.push(lidar_sequence.frames[2])
        assert early.n_pairs == 1
        assert len(early.pair_seconds) == 1
        assert early.profiler.total == early_total

    def test_run_streaming_odometry_max_pairs(self, lidar_sequence):
        result = run_streaming_odometry(
            lidar_sequence, quick_pipeline(), max_pairs=1
        )
        assert result.n_pairs == 1
        assert np.array_equal(result.trajectory[0], np.eye(4))

    def test_plain_frame_list_without_ground_truth(self, lidar_sequence):
        result = run_streaming_odometry(
            list(lidar_sequence.frames[:2]), quick_pipeline()
        )
        assert result.errors is None
        assert result.n_pairs == 1

    def test_single_frame_rejected(self, lidar_sequence):
        with pytest.raises(ValueError):
            run_streaming_odometry([lidar_sequence.frames[0]], quick_pipeline())
