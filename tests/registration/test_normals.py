"""Unit tests for normal estimation (PlaneSVD / AreaWeighted)."""

import numpy as np
import pytest

from repro.io import PointCloud
from repro.registration import (
    NormalEstimationConfig,
    SearchConfig,
    build_searcher,
    estimate_normals,
)


def plane_cloud(rng, normal, n=120, extent=4.0, noise=0.0):
    """Points on the plane through the origin with the given normal."""
    normal = np.asarray(normal, dtype=float)
    normal = normal / np.linalg.norm(normal)
    basis_u = np.cross(normal, [1.0, 0.0, 0.0])
    if np.linalg.norm(basis_u) < 1e-8:
        basis_u = np.cross(normal, [0.0, 1.0, 0.0])
    basis_u /= np.linalg.norm(basis_u)
    basis_v = np.cross(normal, basis_u)
    uv = rng.uniform(-extent, extent, size=(n, 2))
    points = uv[:, :1] * basis_u + uv[:, 1:] * basis_v
    if noise > 0:
        points = points + rng.normal(scale=noise, size=(n, 1)) * normal
    return PointCloud(points)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NormalEstimationConfig(method="bogus")
        with pytest.raises(ValueError):
            NormalEstimationConfig(radius=0.0)
        with pytest.raises(ValueError):
            NormalEstimationConfig(min_neighbors=2)


class TestPlaneSVD:
    @pytest.mark.parametrize(
        "true_normal", [[0, 0, 1], [0, 1, 0], [1, 1, 1], [1, -2, 0.5]]
    )
    def test_recovers_plane_normal(self, rng, true_normal):
        cloud = plane_cloud(rng, true_normal)
        searcher = build_searcher(cloud.points, SearchConfig())
        config = NormalEstimationConfig(
            method="plane_svd", radius=1.5, orient_towards=tuple(
                10.0 * np.asarray(true_normal, dtype=float)
                / np.linalg.norm(true_normal)
            ),
        )
        result = estimate_normals(cloud, searcher, config)
        unit = np.asarray(true_normal, dtype=float)
        unit /= np.linalg.norm(unit)
        dots = result.normals @ unit
        assert np.mean(np.abs(dots) > 0.99) > 0.9

    def test_normals_are_unit_length(self, rng):
        cloud = plane_cloud(rng, [0, 0, 1], noise=0.02)
        searcher = build_searcher(cloud.points, SearchConfig())
        result = estimate_normals(cloud, searcher, NormalEstimationConfig(radius=1.0))
        norms = np.linalg.norm(result.normals, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_curvature_zero_on_plane(self, rng):
        cloud = plane_cloud(rng, [0, 0, 1])
        searcher = build_searcher(cloud.points, SearchConfig())
        result = estimate_normals(cloud, searcher, NormalEstimationConfig(radius=1.5))
        assert np.median(result.get_attribute("curvature")) < 1e-6

    def test_curvature_positive_on_sphere(self, rng):
        directions = rng.normal(size=(200, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        cloud = PointCloud(directions)  # unit sphere surface
        searcher = build_searcher(cloud.points, SearchConfig())
        result = estimate_normals(cloud, searcher, NormalEstimationConfig(radius=0.5))
        assert np.median(result.get_attribute("curvature")) > 1e-3

    def test_orientation_towards_viewpoint(self, rng):
        cloud = plane_cloud(rng, [0, 0, 1])
        searcher = build_searcher(cloud.points, SearchConfig())
        config = NormalEstimationConfig(radius=1.5, orient_towards=(0, 0, 10.0))
        result = estimate_normals(cloud, searcher, config)
        assert np.all(result.normals[:, 2] > 0)

    def test_sparse_neighborhood_fallback(self, rng):
        # Isolated points (far apart) get the upward fallback normal.
        cloud = PointCloud(rng.uniform(0, 1000, size=(20, 3)))
        searcher = build_searcher(cloud.points, SearchConfig())
        result = estimate_normals(cloud, searcher, NormalEstimationConfig(radius=0.5))
        assert np.allclose(result.normals, [0, 0, 1])

    def test_original_cloud_untouched(self, rng):
        cloud = plane_cloud(rng, [0, 0, 1])
        searcher = build_searcher(cloud.points, SearchConfig())
        estimate_normals(cloud, searcher, NormalEstimationConfig(radius=1.0))
        assert not cloud.has_normals


class TestAreaWeighted:
    def test_recovers_plane_normal(self, rng):
        cloud = plane_cloud(rng, [0, 1, 1])
        searcher = build_searcher(cloud.points, SearchConfig())
        config = NormalEstimationConfig(
            method="area_weighted", radius=1.5, orient_towards=(0, 10.0, 10.0)
        )
        result = estimate_normals(cloud, searcher, config)
        unit = np.array([0, 1, 1]) / np.sqrt(2)
        dots = result.normals @ unit
        assert np.mean(np.abs(dots) > 0.99) > 0.85

    def test_agrees_with_plane_svd_on_smooth_surface(self, rng):
        cloud = plane_cloud(rng, [0, 0, 1], noise=0.01)
        searcher = build_searcher(cloud.points, SearchConfig())
        svd = estimate_normals(
            cloud, searcher, NormalEstimationConfig(method="plane_svd", radius=1.2)
        )
        area = estimate_normals(
            cloud,
            searcher,
            NormalEstimationConfig(method="area_weighted", radius=1.2),
        )
        dots = np.einsum("ij,ij->i", svd.normals, area.normals)
        assert np.mean(np.abs(dots) > 0.95) > 0.9
