"""Unit tests for the ICP fine-tuning loop."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import PointCloud
from repro.profiling import StageProfiler
from repro.registration import (
    ICPConfig,
    NormalEstimationConfig,
    RPCEConfig,
    SearchConfig,
    build_searcher,
    estimate_normals,
    icp,
)


@pytest.fixture(scope="module")
def structured_target():
    """Ground + two perpendicular walls: fully constrains all 6 DoF."""
    rng = np.random.default_rng(8)
    n = 500
    parts = [
        np.column_stack([rng.uniform(-8, 8, n), rng.uniform(-8, 8, n), np.zeros(n)]),
        np.column_stack(
            [rng.uniform(-3, 3, n // 3), np.full(n // 3, 4.0), rng.uniform(0, 3, n // 3)]
        ),
        np.column_stack(
            [np.full(n // 3, 3.0), rng.uniform(-4, 4, n // 3), rng.uniform(0, 3, n // 3)]
        ),
    ]
    cloud = PointCloud(np.vstack(parts))
    searcher = build_searcher(cloud.points, SearchConfig())
    cloud = estimate_normals(
        cloud, searcher, NormalEstimationConfig(radius=1.0, orient_towards=(0, 0, 6))
    )
    return cloud, searcher


def displaced_source(target, rng, angle=0.04, translation=0.3):
    gt = se3.make_transform(
        se3.axis_angle_to_rotation(rng.normal(size=3), angle),
        rng.uniform(-translation, translation, size=3),
    )
    return target.transformed(se3.invert(gt)), gt


class TestConvergence:
    def test_point_to_point_recovers(self, structured_target, rng):
        target, searcher = structured_target
        source, gt = displaced_source(target, rng)
        result = icp(
            source, target, searcher,
            ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=50),
        )
        rot, trans = se3.transform_distance(gt, result.transformation)
        assert result.converged
        assert rot < 1e-4
        assert trans < 1e-4
        assert result.rmse < 1e-6

    def test_point_to_plane_recovers(self, structured_target, rng):
        target, searcher = structured_target
        source, gt = displaced_source(target, rng)
        result = icp(
            source, target, searcher,
            ICPConfig(
                rpce=RPCEConfig(max_distance=1.5),
                error_metric="point_to_plane",
                max_iterations=50,
            ),
        )
        rot, trans = se3.transform_distance(gt, result.transformation)
        assert rot < 1e-4
        assert trans < 1e-4

    def test_lm_solver(self, structured_target, rng):
        target, searcher = structured_target
        source, gt = displaced_source(target, rng)
        result = icp(
            source, target, searcher,
            ICPConfig(rpce=RPCEConfig(max_distance=1.5), solver="lm",
                      max_iterations=30),
        )
        _, trans = se3.transform_distance(gt, result.transformation)
        assert trans < 1e-3

    def test_initial_guess_speeds_convergence(self, structured_target, rng):
        target, searcher = structured_target
        source, gt = displaced_source(target, rng, angle=0.15, translation=1.0)
        config = ICPConfig(rpce=RPCEConfig(max_distance=2.0), max_iterations=50)
        seeded = icp(source, target, searcher, config, initial=gt)
        cold = icp(source, target, searcher, config)
        assert seeded.iterations <= cold.iterations

    def test_max_iterations_respected(self, structured_target, rng):
        target, searcher = structured_target
        source, _ = displaced_source(target, rng)
        result = icp(
            source, target, searcher,
            ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=2),
        )
        assert result.iterations <= 2

    def test_rmse_history_monotonic_tail(self, structured_target, rng):
        target, searcher = structured_target
        source, _ = displaced_source(target, rng)
        result = icp(
            source, target, searcher,
            ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=30),
        )
        history = result.rmse_history
        assert len(history) >= 2
        assert history[-1] <= history[0] + 1e-12


class TestConfiguration:
    def test_point_to_plane_requires_target_normals(self, rng):
        bare = PointCloud(rng.normal(size=(50, 3)))
        searcher = build_searcher(bare.points, SearchConfig())
        with pytest.raises(ValueError, match="normals"):
            icp(bare, bare, searcher, ICPConfig(error_metric="point_to_plane"))

    def test_validation(self):
        with pytest.raises(ValueError):
            ICPConfig(error_metric="bogus")
        with pytest.raises(ValueError):
            ICPConfig(solver="bogus")
        with pytest.raises(ValueError):
            ICPConfig(max_iterations=0)

    def test_profiler_stages_charged(self, structured_target, rng):
        target, _ = structured_target
        source, _ = displaced_source(target, rng)
        profiler = StageProfiler()
        # The searcher must carry the profiler for its query timing to be
        # charged to the active stage (the pipeline wires this the same way).
        searcher = build_searcher(target.points, SearchConfig(), profiler=profiler)
        icp(
            source, target, searcher,
            ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=5),
            profiler=profiler,
        )
        assert "RPCE" in profiler.stages
        assert "Error Minimization" in profiler.stages
        assert profiler.stages["RPCE"].kdtree_search > 0

    def test_searcher_factory_called_per_iteration(self, structured_target, rng):
        target, _ = structured_target
        source, _ = displaced_source(target, rng)
        calls = []

        def factory():
            calls.append(1)
            return build_searcher(target.points, SearchConfig())

        result = icp(
            source, target, factory(),
            ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=4,
                      transformation_epsilon=0.0, fitness_epsilon=0.0),
            searcher_factory=factory,
        )
        assert len(calls) == 1 + result.iterations

    def test_no_correspondences_stops_early(self, rng):
        # Source far outside the gate: no pairs, graceful stop.
        target = PointCloud(rng.normal(size=(50, 3)))
        source = PointCloud(rng.normal(size=(50, 3)) + 1000.0)
        searcher = build_searcher(target.points, SearchConfig())
        result = icp(
            source, target, searcher,
            ICPConfig(rpce=RPCEConfig(max_distance=0.5), max_iterations=10),
        )
        assert not result.converged
        assert result.n_correspondences < 6
