"""Unit tests for the FPFH / SHOT / 3DSC descriptors."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import PointCloud
from repro.registration import (
    DescriptorConfig,
    NormalEstimationConfig,
    SearchConfig,
    build_searcher,
    compute_descriptors,
    estimate_normals,
)
from repro.registration.descriptors import FPFH_DIMS, SC3D_DIMS, SHOT_DIMS


@pytest.fixture(scope="module")
def structured_cloud():
    """A corner scene with normals, plus some keypoint indices."""
    rng = np.random.default_rng(3)
    n = 300
    parts = [
        np.column_stack([rng.uniform(0, 5, n), rng.uniform(0, 5, n), np.zeros(n)]),
        np.column_stack(
            [rng.uniform(0, 5, n // 2), np.zeros(n // 2), rng.uniform(0, 3, n // 2)]
        ),
        rng.normal(scale=0.3, size=(60, 3)) + [2.5, 2.5, 1.0],  # a blob
    ]
    cloud = PointCloud(np.vstack(parts))
    searcher = build_searcher(cloud.points, SearchConfig())
    cloud = estimate_normals(
        cloud, searcher, NormalEstimationConfig(radius=0.7, orient_towards=(2, 2, 8))
    )
    keypoints = np.arange(0, len(cloud), 37)
    return cloud, searcher, keypoints


def rotated_copy(cloud, rng):
    transform = se3.make_transform(se3.random_rotation(rng), [0.0, 0.0, 0.0])
    return cloud.transformed(transform), transform


DIMS = {"fpfh": FPFH_DIMS, "shot": SHOT_DIMS, "3dsc": SC3D_DIMS}


class TestShapes:
    @pytest.mark.parametrize("method", ["fpfh", "shot", "3dsc"])
    def test_output_shape(self, structured_cloud, method):
        cloud, searcher, keypoints = structured_cloud
        config = DescriptorConfig(method=method, radius=1.0)
        descriptors = compute_descriptors(cloud, searcher, keypoints, config)
        assert descriptors.shape == (len(keypoints), DIMS[method])
        assert config.dims == DIMS[method]

    @pytest.mark.parametrize("method", ["fpfh", "shot", "3dsc"])
    def test_finite_and_nonnegative(self, structured_cloud, method):
        cloud, searcher, keypoints = structured_cloud
        descriptors = compute_descriptors(
            cloud, searcher, keypoints, DescriptorConfig(method=method, radius=1.0)
        )
        assert np.all(np.isfinite(descriptors))
        assert np.all(descriptors >= 0)

    def test_empty_keypoints(self, structured_cloud):
        cloud, searcher, _ = structured_cloud
        descriptors = compute_descriptors(
            cloud, searcher, np.empty(0, dtype=np.int64), DescriptorConfig()
        )
        assert descriptors.shape == (0, FPFH_DIMS)

    def test_requires_normals(self, rng):
        bare = PointCloud(rng.normal(size=(50, 3)))
        searcher = build_searcher(bare.points, SearchConfig())
        with pytest.raises(ValueError, match="normals"):
            compute_descriptors(bare, searcher, np.array([0]), DescriptorConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DescriptorConfig(method="bogus")
        with pytest.raises(ValueError):
            DescriptorConfig(radius=0.0)


class TestNormalization:
    def test_fpfh_histograms_sum_to_100(self, structured_cloud):
        cloud, searcher, keypoints = structured_cloud
        descriptors = compute_descriptors(
            cloud, searcher, keypoints, DescriptorConfig(method="fpfh", radius=1.0)
        )
        sums = descriptors.sum(axis=1)
        nonzero = sums > 0
        assert np.allclose(sums[nonzero], 100.0)

    @pytest.mark.parametrize("method", ["shot", "3dsc"])
    def test_unit_norm(self, structured_cloud, method):
        cloud, searcher, keypoints = structured_cloud
        descriptors = compute_descriptors(
            cloud, searcher, keypoints, DescriptorConfig(method=method, radius=1.0)
        )
        norms = np.linalg.norm(descriptors, axis=1)
        nonzero = norms > 0
        assert np.allclose(norms[nonzero], 1.0)


class TestInvariance:
    """Descriptors must be (approximately) rotation-invariant — that is
    what makes feature-space matching across frames possible."""

    @pytest.mark.parametrize("method", ["fpfh", "shot", "3dsc"])
    def test_rotation_invariance(self, structured_cloud, rng, method):
        # Keypoints in the blob: distinctive geometry, so the local
        # reference frames of SHOT/3DSC are well conditioned.  (On a
        # perfectly flat plane the LRF azimuth is mathematically
        # arbitrary — tied covariance eigenvalues — and no hard-binned
        # descriptor can be invariant there.)
        cloud, searcher, _ = structured_cloud
        blob_mask = np.linalg.norm(cloud.points - [2.5, 2.5, 1.0], axis=1) < 0.4
        keypoints = np.nonzero(blob_mask)[0][:8]
        assert len(keypoints) >= 3
        config = DescriptorConfig(method=method, radius=1.2)
        original = compute_descriptors(cloud, searcher, keypoints, config)

        rotated, _ = rotated_copy(cloud, rng)
        rotated_searcher = build_searcher(rotated.points, SearchConfig())
        transformed = compute_descriptors(rotated, rotated_searcher, keypoints, config)

        cosines = []
        for row in range(len(keypoints)):
            a, b = original[row], transformed[row]
            if np.linalg.norm(a) == 0 or np.linalg.norm(b) == 0:
                continue
            cosines.append(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert np.median(cosines) > 0.8

    def test_fpfh_discriminates_geometry(self, structured_cloud):
        """Descriptors on a flat plane differ from descriptors on the
        blob — otherwise matching would be meaningless."""
        cloud, searcher, _ = structured_cloud
        points = cloud.points
        flat_idx = np.array([np.argmin(np.linalg.norm(points - [4.0, 4.0, 0.0], axis=1))])
        blob_idx = np.array([np.argmin(np.linalg.norm(points - [2.5, 2.5, 1.0], axis=1))])
        config = DescriptorConfig(method="fpfh", radius=1.0)
        flat = compute_descriptors(cloud, searcher, flat_idx, config)[0]
        blob = compute_descriptors(cloud, searcher, blob_idx, config)[0]
        cosine = flat @ blob / (np.linalg.norm(flat) * np.linalg.norm(blob) + 1e-12)
        assert cosine < 0.995
