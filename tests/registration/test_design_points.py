"""Unit tests for the DP1-DP8 design-point configurations."""

import pytest

from repro.registration import (
    DESIGN_POINT_NAMES,
    approximate_variant,
    design_point,
    dp4_performance,
    dp7_accuracy,
)


class TestDesignPoints:
    def test_eight_points_defined(self):
        assert len(DESIGN_POINT_NAMES) == 8

    @pytest.mark.parametrize("name", DESIGN_POINT_NAMES)
    def test_all_construct(self, name):
        config = design_point(name)
        assert config.normals.radius > 0
        assert config.icp.max_iterations >= 1

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            design_point("DP9")

    def test_dp4_vs_dp7_radii_match_paper(self):
        """Sec. 6.3: DP4 NE radius 0.30, DP7 NE radius 0.75."""
        assert dp4_performance().normals.radius == pytest.approx(0.30)
        assert dp7_accuracy().normals.radius == pytest.approx(0.75)

    def test_scale_multiplies_radii(self):
        base = design_point("DP4")
        scaled = design_point("DP4", scale=2.0)
        assert scaled.normals.radius == pytest.approx(2 * base.normals.radius)
        assert scaled.descriptor.radius == pytest.approx(
            2 * base.descriptor.radius
        )

    def test_points_span_algorithm_space(self):
        """The DPs must cover the Table-1 algorithm choices."""
        keypoint_methods = {design_point(n).keypoints.method for n in DESIGN_POINT_NAMES}
        descriptor_methods = {
            design_point(n).descriptor.method for n in DESIGN_POINT_NAMES
        }
        normal_methods = {design_point(n).normals.method for n in DESIGN_POINT_NAMES}
        rejection_methods = {
            design_point(n).rejection.method for n in DESIGN_POINT_NAMES
        }
        metrics_used = {design_point(n).icp.error_metric for n in DESIGN_POINT_NAMES}
        assert len(keypoint_methods) >= 3
        assert len(descriptor_methods) >= 2
        assert len(normal_methods) == 2
        assert rejection_methods == {"threshold", "ransac"}
        assert metrics_used == {"point_to_point", "point_to_plane"}

    def test_dp_cost_ordering_knobs(self):
        """DP1 is the cheap end, DP8 the expensive end."""
        dp1, dp8 = design_point("DP1"), design_point("DP8")
        assert dp1.normals.radius < dp8.normals.radius
        assert dp1.icp.max_iterations < dp8.icp.max_iterations


class TestApproximateVariant:
    def test_only_search_changes(self):
        base = design_point("DP7")
        approx = approximate_variant(base)
        assert approx.search.backend == "approximate"
        assert approx.search.leaf_size == 128
        assert approx.normals == base.normals
        assert approx.icp == base.icp

    def test_paper_thresholds(self):
        approx = approximate_variant(design_point("DP4"))
        assert approx.search.approx.nn_threshold == pytest.approx(1.2)
        assert approx.search.approx.radius_threshold_fraction == pytest.approx(0.4)
