"""Unit tests for correspondence rejection (threshold, ratio, RANSAC)."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.registration import (
    Correspondences,
    RejectionConfig,
    reject_correspondences,
    reject_ransac,
)
from repro.registration.rejection import (
    reject_distance,
    reject_one_to_one,
    reject_ratio,
)


def make_matched_scene(rng, n=40, outlier_fraction=0.25):
    """Source points, a GT transform, and correspondences with outliers."""
    source = rng.normal(size=(n, 3)) * 5.0
    gt = se3.make_transform(
        se3.axis_angle_to_rotation([0.1, 0.9, -0.3], 0.3), [1.0, -0.5, 0.25]
    )
    target = se3.apply_transform(gt, source)
    n_outliers = int(outlier_fraction * n)
    outlier_rows = rng.choice(n, size=n_outliers, replace=False)
    target_indices = np.arange(n)
    # Corrupt some matches by pairing with a rotated-away wrong point.
    target = target.copy()
    target[outlier_rows] += rng.normal(scale=8.0, size=(n_outliers, 3))
    corr = Correspondences(
        np.arange(n), target_indices, np.zeros(n)
    )
    return source, target, corr, gt, set(outlier_rows.tolist())


class TestSimpleRejectors:
    def test_distance_threshold(self):
        corr = Correspondences(
            np.arange(4), np.arange(4), np.array([0.1, 0.9, 0.4, 2.0])
        )
        kept = reject_distance(corr, 0.5)
        assert list(kept.source_indices) == [0, 2]

    def test_ratio_requires_seconds(self):
        corr = Correspondences(np.arange(2), np.arange(2), np.zeros(2))
        with pytest.raises(ValueError):
            reject_ratio(corr, 0.8)

    def test_ratio_keeps_distinctive(self):
        corr = Correspondences(
            np.arange(3),
            np.arange(3),
            np.array([0.1, 0.5, 0.2]),
            np.array([0.5, 0.55, 1.0]),  # ratios: 0.2, 0.91, 0.2
        )
        kept = reject_ratio(corr, 0.8)
        assert list(kept.source_indices) == [0, 2]

    def test_one_to_one_keeps_closest(self):
        corr = Correspondences(
            np.array([0, 1, 2]),
            np.array([7, 7, 8]),  # 0 and 1 both claim target 7
            np.array([0.5, 0.1, 0.3]),
        )
        kept = reject_one_to_one(corr)
        assert len(kept) == 2
        assert 1 in kept.source_indices  # the closer claimant wins
        assert 0 not in kept.source_indices

    def test_one_to_one_empty(self):
        empty = Correspondences(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0)
        )
        assert len(reject_one_to_one(empty)) == 0


class TestRansac:
    def test_recovers_transform_with_outliers(self, rng):
        source, target, corr, gt, outliers = make_matched_scene(rng)
        result = reject_ransac(corr, source, target, threshold=0.3, iterations=300)
        rot, trans = se3.transform_distance(gt, result.transformation)
        assert rot < 1e-6
        assert trans < 1e-6

    def test_outliers_removed(self, rng):
        source, target, corr, gt, outliers = make_matched_scene(rng)
        result = reject_ransac(corr, source, target, threshold=0.3, iterations=300)
        surviving = set(result.correspondences.source_indices.tolist())
        assert not (surviving & outliers)
        assert len(surviving) == len(corr) - len(outliers)

    def test_inlier_ratio_reported(self, rng):
        source, target, corr, gt, outliers = make_matched_scene(
            rng, outlier_fraction=0.25
        )
        result = reject_ransac(corr, source, target, threshold=0.3, iterations=300)
        assert result.inlier_ratio == pytest.approx(0.75, abs=0.05)

    def test_too_few_pairs_returns_identity(self, rng):
        corr = Correspondences(np.arange(2), np.arange(2), np.zeros(2))
        result = reject_ransac(corr, rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))
        assert np.array_equal(result.transformation, np.eye(4))

    def test_deterministic_for_seed(self, rng):
        source, target, corr, _, _ = make_matched_scene(rng)
        a = reject_ransac(corr, source, target, seed=5)
        b = reject_ransac(corr, source, target, seed=5)
        assert np.array_equal(a.transformation, b.transformation)


class TestCascade:
    def test_ransac_cascade(self, rng):
        source, target, corr, gt, _ = make_matched_scene(rng)
        config = RejectionConfig(
            method="ransac", ransac_threshold=0.3, ransac_iterations=300
        )
        result = reject_correspondences(corr, source, target, config)
        rot, trans = se3.transform_distance(gt, result.transformation)
        assert trans < 1e-6

    def test_threshold_cascade_fits_kabsch(self, rng):
        source, target, corr, gt, _ = make_matched_scene(
            rng, outlier_fraction=0.0
        )
        config = RejectionConfig(method="threshold")
        result = reject_correspondences(corr, source, target, config)
        rot, trans = se3.transform_distance(gt, result.transformation)
        assert trans < 1e-6

    def test_distance_threshold_applied_first(self, rng):
        source, target, corr, _, _ = make_matched_scene(rng, outlier_fraction=0.0)
        corr.distances[:] = 1.0
        corr.distances[3] = 10.0
        config = RejectionConfig(method="threshold", distance_threshold=5.0)
        result = reject_correspondences(corr, source, target, config)
        assert 3 not in result.correspondences.source_indices

    def test_degenerate_input_graceful(self, rng):
        empty = Correspondences(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0)
        )
        result = reject_correspondences(
            empty, rng.normal(size=(5, 3)), rng.normal(size=(5, 3)),
            RejectionConfig(method="threshold"),
        )
        assert np.array_equal(result.transformation, np.eye(4))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RejectionConfig(method="bogus")
        with pytest.raises(ValueError):
            RejectionConfig(ransac_threshold=0.0)
        with pytest.raises(ValueError):
            RejectionConfig(ransac_iterations=0)
