"""Per-stage parity: ragged kernels vs the seed loop implementations.

Every front-end stage was rewritten (PR 5) from a per-point Python
loop over batched neighbor lists to vectorized CSR segment kernels
(:mod:`repro.core.ragged`).  This module pins the seed loop
implementations as references and asserts the kernels reproduce them
element-for-element across all four search backends:

* descriptors (FPFH/SHOT/3DSC) and curvature: exact / tight-tolerance
  equality given the same input normals;
* keypoint index sets (Harris, SIFT) and voxel-downsample
  representative sets: exact equality;
* plane-SVD normals: exact up to the documented covariance tie rule —
  the kernels assemble neighborhood covariances from chunked raw
  moments instead of BLAS matmuls, and for neighborhoods with a
  (near-)degenerate eigenspace or a grazing viewpoint angle the
  last-ulp difference legitimately picks a different eigenbasis/sign.
  Such rows must be rare (< 1 %); all others must agree to 1e-6.

Each comparison uses a fresh searcher per run so the stateful
approximate backend sees an identical query sequence on both paths.
"""

import numpy as np
import pytest

from repro.io import default_test_model, make_sequence
from repro.io.pointcloud import PointCloud
from repro.registration import (
    NormalEstimationConfig,
    SearchConfig,
    build_searcher,
    estimate_normals,
)
from repro.registration.descriptors.fpfh import FPFH_BINS, FPFH_DIMS, fpfh_descriptors
from repro.registration.descriptors.sc3d import sc3d_descriptors
from repro.registration.descriptors.shot import SHOT_DIMS, shot_descriptors, shot_lrf
from repro.registration.keypoints.harris import harris_keypoints
from repro.registration.keypoints.sift import sift_keypoints

BACKENDS = ("canonical", "twostage", "bruteforce", "approximate")
NORMAL_RADIUS = 0.8
DESCRIPTOR_RADIUS = 1.0


@pytest.fixture(scope="module")
def cloud():
    sequence = make_sequence(
        n_frames=1, seed=7, model=default_test_model(azimuth_steps=140, channels=14)
    )
    return sequence.frames[0]


@pytest.fixture(scope="module")
def normal_cloud(cloud):
    """Cloud with kernel-path normals: the shared input for downstream
    stage comparisons (isolates each stage's own arithmetic)."""
    searcher = build_searcher(cloud.points, SearchConfig(backend="twostage"))
    return estimate_normals(
        cloud, searcher, NormalEstimationConfig(radius=NORMAL_RADIUS)
    )


@pytest.fixture(scope="module")
def keypoints(normal_cloud):
    searcher = build_searcher(normal_cloud.points, SearchConfig(backend="twostage"))
    indices = harris_keypoints(normal_cloud, searcher, radius=1.2)
    assert len(indices) >= 10, "parity needs a non-trivial keypoint set"
    return indices


def fresh(points, backend):
    return build_searcher(points, SearchConfig(backend=backend))


# ----------------------------------------------------------------------
# Seed (pre-PR 5) loop implementations, pinned as references.
# ----------------------------------------------------------------------


def ref_plane_svd_normal(neighborhood):
    centered = neighborhood - neighborhood.mean(axis=0)
    covariance = centered.T @ centered / len(neighborhood)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    normal = eigenvectors[:, 0]
    total = float(eigenvalues.sum())
    curvature = float(eigenvalues[0]) / total if total > 1e-12 else 0.0
    norm = np.linalg.norm(normal)
    return (normal / norm if norm > 0 else np.array([0.0, 0.0, 1.0])), curvature


def ref_area_weighted_normal(point, neighborhood):
    rough_normal, curvature = ref_plane_svd_normal(neighborhood)
    offsets = neighborhood - point
    basis_u = np.cross(rough_normal, [1.0, 0.0, 0.0])
    if np.linalg.norm(basis_u) < 1e-8:
        basis_u = np.cross(rough_normal, [0.0, 1.0, 0.0])
    basis_u /= np.linalg.norm(basis_u)
    basis_v = np.cross(rough_normal, basis_u)
    angles = np.arctan2(offsets @ basis_v, offsets @ basis_u)
    ring = offsets[np.argsort(angles, kind="stable")]
    crosses = np.cross(ring, np.roll(ring, -1, axis=0))
    total = crosses.sum(axis=0)
    norm = np.linalg.norm(total)
    if norm < 1e-12:
        return rough_normal, curvature
    normal = total / norm
    if normal @ rough_normal < 0:
        normal = -normal
    return normal, curvature


def ref_estimate_normals(cloud, searcher, config):
    points = cloud.points
    n = len(points)
    normals = np.zeros((n, 3))
    curvature = np.zeros(n)
    viewpoint = np.asarray(config.orient_towards, dtype=np.float64)
    all_neighbors, _ = searcher.radius_batch(points, config.radius)
    for i in range(n):
        neighbor_idx = all_neighbors[i]
        if len(neighbor_idx) < config.min_neighbors:
            normals[i] = (0.0, 0.0, 1.0)
            continue
        neighborhood = points[neighbor_idx]
        if config.method == "plane_svd":
            normal, curv = ref_plane_svd_normal(neighborhood)
        else:
            normal, curv = ref_area_weighted_normal(points[i], neighborhood)
        if normal @ (viewpoint - points[i]) < 0:
            normal = -normal
        normals[i] = normal
        curvature[i] = curv
    return normals, curvature


def ref_harris_scores_and_keypoints(cloud, searcher, radius, k=0.04,
                                    threshold=1e-4, response="eigen_product"):
    points = cloud.points
    normals = cloud.normals
    n = len(points)
    scores = np.full(n, -np.inf)
    all_neighbors, _ = searcher.radius_batch(points, radius)
    for i in range(n):
        neighbor_idx = all_neighbors[i]
        if len(neighbor_idx) < 5:
            continue
        nbr_normals = normals[neighbor_idx]
        centered = nbr_normals - nbr_normals.mean(axis=0)
        tensor = centered.T @ centered / len(neighbor_idx)
        if response == "harris":
            scores[i] = np.linalg.det(tensor) - k * np.trace(tensor) ** 2
        else:
            eigenvalues = np.linalg.eigvalsh(tensor)
            scores[i] = eigenvalues[0] * eigenvalues[1]
    return scores


def ref_sift_keypoints(cloud, searcher, min_scale=0.5, n_octaves=3,
                       scales_per_octave=2, contrast_threshold=1e-4):
    points = cloud.points
    signal = np.asarray(cloud.get_attribute("curvature"), dtype=np.float64)
    n = len(points)
    scales = sorted({
        min_scale * (2.0 ** octave) * (2.0 ** (s / scales_per_octave))
        for octave in range(n_octaves)
        for s in range(scales_per_octave + 1)
    })
    smoothed = np.empty((len(scales), n))
    cache_idx, cache_dist = searcher.radius_batch(points, 2.0 * scales[-1])
    for s, sigma in enumerate(scales):
        support = 2.0 * sigma
        for i in range(n):
            idx, dist = cache_idx[i], cache_dist[i]
            mask = dist <= support
            if not np.any(mask):
                smoothed[s, i] = signal[i]
                continue
            weights = np.exp(-0.5 * (dist[mask] / sigma) ** 2)
            smoothed[s, i] = float(np.sum(weights * signal[idx[mask]]) / np.sum(weights))
    dog = np.diff(smoothed, axis=0)
    keypoints = []
    for s in range(1, len(dog) - 1) if len(dog) > 2 else range(len(dog)):
        lower = dog[s - 1] if s - 1 >= 0 else None
        upper = dog[s + 1] if s + 1 < len(dog) else None
        sigma = scales[s]
        for i in range(n):
            value = dog[s, i]
            if abs(value) < contrast_threshold:
                continue
            idx, dist = cache_idx[i], cache_dist[i]
            mask = (dist <= sigma) & (idx != i)
            spatial = dog[s, idx[mask]]
            if len(spatial) == 0:
                continue
            is_max = value > spatial.max()
            is_min = value < spatial.min()
            if not (is_max or is_min):
                continue
            rejected = False
            for band in (lower, upper):
                if band is None:
                    continue
                neighborhood = np.append(band[idx[mask]], band[i])
                if is_max and value <= neighborhood.max():
                    rejected = True
                if is_min and value >= neighborhood.min():
                    rejected = True
            if not rejected:
                keypoints.append(i)
    return np.array(sorted(set(keypoints)), dtype=np.int64)


def ref_spfh(points, normals, idx, neighbor_idx):
    histogram = np.zeros(FPFH_DIMS)
    if len(neighbor_idx) == 0:
        return histogram
    p, n_p = points[idx], normals[idx]
    q, n_q = points[neighbor_idx], normals[neighbor_idx]
    d = q - p
    dist = np.linalg.norm(d, axis=1)
    ok = dist > 1e-9
    if not np.any(ok):
        return histogram
    d = d[ok] / dist[ok, None]
    n_q = n_q[ok]
    u = np.broadcast_to(n_p, d.shape)
    v = np.cross(d, u)
    v_norm = np.linalg.norm(v, axis=1, keepdims=True)
    good = v_norm[:, 0] > 1e-9
    if not np.any(good):
        return histogram
    v = v[good] / v_norm[good]
    u, d, n_q = u[good], d[good], n_q[good]
    w = np.cross(u, v)
    alpha = np.einsum("ij,ij->i", v, n_q)
    phi = np.einsum("ij,ij->i", u, d)
    theta = np.arctan2(np.einsum("ij,ij->i", w, n_q), np.einsum("ij,ij->i", u, n_q))
    for feature, lo, hi, offset in (
        (alpha, -1.0, 1.0, 0),
        (phi, -1.0, 1.0, FPFH_BINS),
        (theta, -np.pi, np.pi, 2 * FPFH_BINS),
    ):
        bins = np.clip(
            ((feature - lo) / (hi - lo) * FPFH_BINS).astype(np.int64),
            0, FPFH_BINS - 1,
        )
        histogram[offset: offset + FPFH_BINS] += np.bincount(bins, minlength=FPFH_BINS)
    return histogram


def ref_fpfh_descriptors(cloud, searcher, keypoint_indices, radius):
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points, normals = cloud.points, cloud.normals
    neighbor_lists = {}
    kp_neighbors, kp_dists = searcher.radius_batch(points[keypoint_indices], radius)
    for idx, nbr_idx, nbr_dist in zip(keypoint_indices, kp_neighbors, kp_dists):
        mask = nbr_idx != idx
        neighbor_lists[int(idx)] = (nbr_idx[mask], nbr_dist[mask])
    needed = np.unique(np.concatenate(
        [keypoint_indices] + [nbr for nbr, _ in neighbor_lists.values()]
    ))
    extra = np.array(
        [int(i) for i in needed if int(i) not in neighbor_lists], dtype=np.int64
    )
    if len(extra):
        extra_neighbors, extra_dists = searcher.radius_batch(points[extra], radius)
        for idx, nbr_idx, nbr_dist in zip(extra, extra_neighbors, extra_dists):
            mask = nbr_idx != idx
            neighbor_lists[int(idx)] = (nbr_idx[mask], nbr_dist[mask])
    spfh = {int(i): ref_spfh(points, normals, int(i), neighbor_lists[int(i)][0])
            for i in needed}
    descriptors = np.zeros((len(keypoint_indices), FPFH_DIMS))
    for row, idx in enumerate(keypoint_indices):
        nbr_idx, nbr_dist = neighbor_lists[int(idx)]
        histogram = spfh[int(idx)].copy()
        if len(nbr_idx):
            weights = 1.0 / np.maximum(nbr_dist, 1e-6)
            weighted = np.zeros(FPFH_DIMS)
            for j, w in zip(nbr_idx, weights):
                weighted += w * spfh[int(j)]
            histogram += weighted / len(nbr_idx)
        total = histogram.sum()
        if total > 0:
            histogram = histogram / total * 100.0
        descriptors[row] = histogram
    return descriptors


def ref_shot_descriptors(cloud, searcher, keypoint_indices, radius):
    from repro.registration.descriptors.shot import (
        _AZIMUTH_SECTORS, _COSINE_BINS, _ELEVATION_SECTORS, _RADIAL_SECTORS,
    )
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points, normals = cloud.points, cloud.normals
    descriptors = np.zeros((len(keypoint_indices), SHOT_DIMS))
    all_neighbors, all_dists = searcher.radius_batch(points[keypoint_indices], radius)
    for row, idx in enumerate(keypoint_indices):
        center = points[idx]
        mask = all_neighbors[row] != idx
        nbr_idx, nbr_dist = all_neighbors[row][mask], all_dists[row][mask]
        if len(nbr_idx) < 5:
            continue
        neighborhood = points[nbr_idx]
        frame = shot_lrf(center, neighborhood, radius)
        local = (neighborhood - center) @ frame.T
        azimuth = np.arctan2(local[:, 1], local[:, 0])
        az_bin = np.clip(
            ((azimuth + np.pi) / (2 * np.pi) * _AZIMUTH_SECTORS).astype(int),
            0, _AZIMUTH_SECTORS - 1,
        )
        el_bin = (local[:, 2] >= 0).astype(int)
        rad_bin = (nbr_dist >= radius / 2.0).astype(int)
        cosine = np.clip(normals[nbr_idx] @ frame[2], -1.0, 1.0)
        cos_bin = np.clip(
            ((cosine + 1.0) / 2.0 * _COSINE_BINS).astype(int), 0, _COSINE_BINS - 1
        )
        volume = (az_bin * _ELEVATION_SECTORS + el_bin) * _RADIAL_SECTORS + rad_bin
        histogram = np.bincount(
            volume * _COSINE_BINS + cos_bin, minlength=SHOT_DIMS
        ).astype(np.float64)
        norm = np.linalg.norm(histogram)
        if norm > 0:
            histogram /= norm
        descriptors[row] = histogram
    return descriptors


def ref_sc3d_descriptors(cloud, searcher, keypoint_indices, radius, min_radius=0.05):
    from repro.registration.descriptors.sc3d import (
        _AZIMUTH_BINS, _ELEVATION_BINS, _RADIAL_BINS, SC3D_DIMS,
    )
    keypoint_indices = np.asarray(keypoint_indices, dtype=np.int64)
    points, normals = cloud.points, cloud.normals
    descriptors = np.zeros((len(keypoint_indices), SC3D_DIMS))
    shell_edges = np.exp(
        np.linspace(np.log(min_radius), np.log(radius), _RADIAL_BINS + 1)
    )
    all_neighbors, all_dists = searcher.radius_batch(points[keypoint_indices], radius)
    masked = []
    for row, idx in enumerate(keypoint_indices):
        nbr_idx, nbr_dist = all_neighbors[row], all_dists[row]
        mask = (nbr_idx != idx) & (nbr_dist >= min_radius)
        masked.append((nbr_idx[mask], nbr_dist[mask]))
    contributing = [nbr for nbr, _ in masked if len(nbr) >= 5]
    unique_neighbors = (
        np.unique(np.concatenate(contributing))
        if contributing else np.empty(0, dtype=np.int64)
    )
    density_of = {}
    if len(unique_neighbors):
        close_lists, _ = searcher.radius_batch(
            points[unique_neighbors], min_radius * 2
        )
        density_of = {
            int(nbr): float(max(len(close), 1))
            for nbr, close in zip(unique_neighbors, close_lists)
        }
    for row, idx in enumerate(keypoint_indices):
        center, normal = points[idx], normals[idx]
        nbr_idx, nbr_dist = masked[row]
        if len(nbr_idx) < 5:
            continue
        neighborhood = points[nbr_idx]
        frame = shot_lrf(center, neighborhood, radius)
        z_axis = normal / max(np.linalg.norm(normal), 1e-12)
        x_seed = frame[0] - (frame[0] @ z_axis) * z_axis
        if np.linalg.norm(x_seed) < 1e-9:
            x_seed = np.array([1.0, 0.0, 0.0])
            x_seed -= (x_seed @ z_axis) * z_axis
            if np.linalg.norm(x_seed) < 1e-9:
                x_seed = np.array([0.0, 1.0, 0.0])
                x_seed -= (x_seed @ z_axis) * z_axis
        x_axis = x_seed / np.linalg.norm(x_seed)
        y_axis = np.cross(z_axis, x_axis)
        local = (neighborhood - center) @ np.vstack([x_axis, y_axis, z_axis]).T
        azimuth = np.arctan2(local[:, 1], local[:, 0])
        az_bin = np.clip(
            ((azimuth + np.pi) / (2 * np.pi) * _AZIMUTH_BINS).astype(int),
            0, _AZIMUTH_BINS - 1,
        )
        elevation = np.arccos(
            np.clip(local[:, 2] / np.maximum(nbr_dist, 1e-12), -1.0, 1.0)
        )
        el_bin = np.clip(
            (elevation / np.pi * _ELEVATION_BINS).astype(int), 0, _ELEVATION_BINS - 1
        )
        rad_bin = np.clip(
            np.searchsorted(shell_edges, nbr_dist, side="right") - 1,
            0, _RADIAL_BINS - 1,
        )
        weights = 1.0 / np.cbrt(
            np.array([density_of[int(nbr)] for nbr in nbr_idx])
        )
        flat = (az_bin * _ELEVATION_BINS + el_bin) * _RADIAL_BINS + rad_bin
        histogram = np.bincount(flat, weights=weights, minlength=SC3D_DIMS)
        norm = np.linalg.norm(histogram)
        if norm > 0:
            histogram /= norm
        descriptors[row] = histogram
    return descriptors


def ref_voxel_downsample_indices(points, voxel_size):
    keys = np.floor(points / voxel_size).astype(np.int64)
    order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
    sorted_keys = keys[order]
    boundaries = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
    group_starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1))
    group_ends = np.concatenate((group_starts[1:], [len(order)]))
    representatives = np.empty(len(group_starts), dtype=np.int64)
    for g, (start, end) in enumerate(zip(group_starts, group_ends)):
        members = order[start:end]
        centroid = points[members].mean(axis=0)
        offsets = points[members] - centroid
        representatives[g] = members[int(np.argmin(np.sum(offsets * offsets, axis=1)))]
    return np.sort(representatives)


# ----------------------------------------------------------------------
# The parity assertions.
# ----------------------------------------------------------------------


def assert_descriptors_match(name, actual, expected, exact=False):
    """Element-for-element up to the documented LRF tie rule.

    SHOT/3DSC frames come from the same covariance tie rule as the
    normals: a (near-)degenerate local reference frame can resolve its
    eigenbasis differently between the BLAS and segment-moment
    assemblies, rotating that keypoint's whole histogram.  Such rows
    must be rare (< 1 %); every other row must agree to 1e-9 (FPFH:
    bit-identical, no LRF involved).
    """
    if exact:
        assert np.array_equal(actual, expected), f"{name}: descriptors diverged"
        return
    row_difference = np.abs(actual - expected).max(axis=1)
    mismatched = int((row_difference > 1e-9).sum())
    limit = max(1, len(actual) // 100)
    assert mismatched <= limit, (
        f"{name}: {mismatched} of {len(actual)} rows beyond the "
        "degenerate-LRF tie rule"
    )
    agreeing = row_difference <= 1e-9
    np.testing.assert_allclose(
        actual[agreeing], expected[agreeing], atol=1e-9,
        err_msg=f"{name} descriptors drifted",
    )


def assert_normals_match(actual_cloud, ref_normals, ref_curvature, n_points):
    """Element-for-element up to the documented covariance tie rule."""
    np.testing.assert_allclose(
        actual_cloud.get_attribute("curvature"), ref_curvature, atol=1e-12
    )
    difference = np.linalg.norm(actual_cloud.normals - ref_normals, axis=1)
    flipped = np.linalg.norm(actual_cloud.normals + ref_normals, axis=1)
    mismatched = np.minimum(difference, flipped) > 1e-6
    assert mismatched.sum() <= max(1, n_points // 100), (
        f"{mismatched.sum()} of {n_points} normals diverge beyond the "
        "degenerate-eigenbasis tie rule"
    )
    agreeing = difference <= 1e-6
    np.testing.assert_allclose(
        actual_cloud.normals[agreeing], ref_normals[agreeing], atol=1e-6
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", ["plane_svd", "area_weighted"])
def test_normals_parity(cloud, backend, method):
    config = NormalEstimationConfig(
        method=method, radius=NORMAL_RADIUS, orient_towards=(0.0, 0.0, 2.0)
    )
    actual = estimate_normals(cloud, fresh(cloud.points, backend), config)
    ref_normals, ref_curvature = ref_estimate_normals(
        cloud, fresh(cloud.points, backend), config
    )
    assert_normals_match(actual, ref_normals, ref_curvature, len(cloud))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("response", ["eigen_product", "harris"])
def test_harris_parity(normal_cloud, backend, response):
    points = normal_cloud.points
    actual = harris_keypoints(
        normal_cloud, fresh(points, backend), radius=1.2, response=response
    )
    scores = ref_harris_scores_and_keypoints(
        normal_cloud, fresh(points, backend), radius=1.2, response=response
    )
    # Replay the seed's candidate selection against the reference
    # scores, then the (unchanged) NMS routine.
    from repro.registration.keypoints.harris import _non_max_suppress
    candidates = np.nonzero(scores > 1e-4)[0]
    expected = (
        _non_max_suppress(points, scores, candidates, 1.2)
        if len(candidates) else candidates.astype(np.int64)
    )
    assert np.array_equal(actual, expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sift_parity(normal_cloud, backend):
    points = normal_cloud.points
    actual = sift_keypoints(normal_cloud, fresh(points, backend))
    expected = ref_sift_keypoints(normal_cloud, fresh(points, backend))
    assert np.array_equal(actual, expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_fpfh_parity_exact(normal_cloud, keypoints, backend):
    """FPFH replays the seed arithmetic element-for-element: SPFH bins
    are integer counts and the weighted accumulation runs in the same
    order, so the result is bit-identical."""
    points = normal_cloud.points
    actual = fpfh_descriptors(
        normal_cloud, fresh(points, backend), keypoints, radius=DESCRIPTOR_RADIUS
    )
    expected = ref_fpfh_descriptors(
        normal_cloud, fresh(points, backend), keypoints, radius=DESCRIPTOR_RADIUS
    )
    assert np.array_equal(actual, expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_shot_parity(normal_cloud, keypoints, backend):
    points = normal_cloud.points
    actual = shot_descriptors(
        normal_cloud, fresh(points, backend), keypoints, radius=DESCRIPTOR_RADIUS
    )
    expected = ref_shot_descriptors(
        normal_cloud, fresh(points, backend), keypoints, radius=DESCRIPTOR_RADIUS
    )
    assert_descriptors_match("shot", actual, expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sc3d_parity(normal_cloud, keypoints, backend):
    points = normal_cloud.points
    actual = sc3d_descriptors(
        normal_cloud, fresh(points, backend), keypoints, radius=DESCRIPTOR_RADIUS
    )
    expected = ref_sc3d_descriptors(
        normal_cloud, fresh(points, backend), keypoints, radius=DESCRIPTOR_RADIUS
    )
    assert_descriptors_match("sc3d", actual, expected)


@pytest.mark.parametrize("voxel_size", [0.4, 1.0, 3.0])
def test_voxel_downsample_parity(cloud, voxel_size):
    actual = cloud.voxel_downsample(voxel_size)
    expected = ref_voxel_downsample_indices(cloud.points, voxel_size)
    assert np.array_equal(actual.points, cloud.points[expected])


def test_voxel_downsample_attributes_survive(rng):
    cloud = PointCloud(
        rng.uniform(0, 5, size=(200, 3)), ring=np.arange(200, dtype=np.int64)
    )
    down = cloud.voxel_downsample(1.0)
    original_rows = {tuple(p) for p in cloud.points.round(12).tolist()}
    assert all(tuple(p) in original_rows for p in down.points.round(12).tolist())
    assert down.has_attribute("ring")
    assert len(down.get_attribute("ring")) == len(down)
