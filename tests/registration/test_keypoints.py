"""Unit tests for the keypoint detectors."""

import numpy as np
import pytest

from repro.io import PointCloud
from repro.registration import (
    KeypointConfig,
    NormalEstimationConfig,
    SearchConfig,
    build_searcher,
    detect_keypoints,
    estimate_normals,
)
from repro.registration.keypoints import (
    build_range_image,
    harris_keypoints,
    narf_keypoints,
    sift_keypoints,
    uniform_keypoints,
)


@pytest.fixture(scope="module")
def corner_cloud():
    """Two walls meeting the ground: corners and edges at known places."""
    rng = np.random.default_rng(0)
    n = 400
    parts = [
        np.column_stack(
            [rng.uniform(0, 6, n), rng.uniform(0, 6, n), np.zeros(n)]
        ),  # ground z=0
        np.column_stack(
            [rng.uniform(0, 6, n // 2), np.zeros(n // 2), rng.uniform(0, 3, n // 2)]
        ),  # wall y=0
        np.column_stack(
            [np.zeros(n // 2), rng.uniform(0, 6, n // 2), rng.uniform(0, 3, n // 2)]
        ),  # wall x=0
    ]
    cloud = PointCloud(np.vstack(parts))
    searcher = build_searcher(cloud.points, SearchConfig())
    cloud = estimate_normals(
        cloud, searcher, NormalEstimationConfig(radius=0.8, orient_towards=(3, 3, 5))
    )
    return cloud, searcher


class TestHarris:
    def test_finds_corner_region(self, corner_cloud):
        cloud, searcher = corner_cloud
        keypoints = harris_keypoints(cloud, searcher, radius=0.8, threshold=1e-4)
        assert len(keypoints) > 0
        # Keypoints concentrate near the corner line x=0, y=0.
        positions = cloud.points[keypoints]
        near_corner = np.sum(
            (np.abs(positions[:, 0]) < 1.2) & (np.abs(positions[:, 1]) < 1.2)
        )
        assert near_corner / len(keypoints) > 0.5

    def test_flat_plane_has_no_keypoints(self, rng):
        points = np.column_stack(
            [rng.uniform(0, 10, 300), rng.uniform(0, 10, 300), np.zeros(300)]
        )
        cloud = PointCloud(points)
        searcher = build_searcher(cloud.points, SearchConfig())
        cloud = estimate_normals(cloud, searcher, NormalEstimationConfig(radius=1.0))
        keypoints = harris_keypoints(cloud, searcher, radius=1.0, threshold=1e-4)
        assert len(keypoints) == 0

    def test_requires_normals(self, rng):
        cloud = PointCloud(rng.normal(size=(50, 3)))
        searcher = build_searcher(cloud.points, SearchConfig())
        with pytest.raises(ValueError, match="normals"):
            harris_keypoints(cloud, searcher)

    def test_nms_spreads_keypoints(self, corner_cloud):
        cloud, searcher = corner_cloud
        keypoints = harris_keypoints(
            cloud, searcher, radius=0.8, threshold=1e-5, non_max_radius=1.0
        )
        if len(keypoints) >= 2:
            positions = cloud.points[keypoints]
            diffs = positions[:, None, :] - positions[None, :, :]
            dists = np.linalg.norm(diffs, axis=2)
            np.fill_diagonal(dists, np.inf)
            assert dists.min() >= 1.0 - 1e-9

    def test_classic_response_option(self, corner_cloud):
        cloud, searcher = corner_cloud
        # The classic det - k trace^2 measure runs (may find nothing on
        # piecewise-planar data — that is exactly why eigen_product is
        # the default).
        keypoints = harris_keypoints(
            cloud, searcher, radius=0.8, threshold=-1.0, response="harris"
        )
        assert isinstance(keypoints, np.ndarray)

    def test_rejects_bad_response(self, corner_cloud):
        cloud, searcher = corner_cloud
        with pytest.raises(ValueError):
            harris_keypoints(cloud, searcher, response="bogus")


class TestSift:
    def test_finds_keypoints_on_curvature_blobs(self, corner_cloud):
        cloud, searcher = corner_cloud
        keypoints = sift_keypoints(
            cloud, searcher, min_scale=0.4, n_octaves=2, scales_per_octave=2,
            contrast_threshold=1e-6,
        )
        assert len(keypoints) >= 0  # shape check; count depends on geometry
        assert keypoints.dtype == np.int64

    def test_requires_curvature(self, rng):
        cloud = PointCloud(rng.normal(size=(30, 3)))
        searcher = build_searcher(cloud.points, SearchConfig())
        with pytest.raises(ValueError, match="curvature"):
            sift_keypoints(cloud, searcher)

    def test_validation(self, corner_cloud):
        cloud, searcher = corner_cloud
        with pytest.raises(ValueError):
            sift_keypoints(cloud, searcher, min_scale=0.0)
        with pytest.raises(ValueError):
            sift_keypoints(cloud, searcher, n_octaves=0)


class TestNarf:
    def test_runs_on_lidar_frame(self, lidar_pair):
        source, _, _ = lidar_pair
        keypoints = narf_keypoints(source, support_size=2.0)
        assert len(keypoints) > 0
        assert len(set(keypoints.tolist())) == len(keypoints)

    def test_max_keypoints_cap(self, lidar_pair):
        source, _, _ = lidar_pair
        keypoints = narf_keypoints(source, support_size=2.0, max_keypoints=5)
        assert len(keypoints) <= 5

    def test_validation(self, lidar_pair):
        source, _, _ = lidar_pair
        with pytest.raises(ValueError):
            narf_keypoints(source, support_size=0.0)

    def test_range_image_from_lidar_channels(self, lidar_pair):
        source, _, _ = lidar_pair
        image = build_range_image(source)
        valid = image.valid_mask()
        assert valid.sum() > 0
        # Every valid pixel points back at a real point with that range.
        rows, cols = np.nonzero(valid)
        for r, c in list(zip(rows, cols))[:50]:
            idx = image.point_index[r, c]
            assert idx >= 0
            point_range = np.linalg.norm(source.points[idx])
            assert point_range == pytest.approx(image.ranges[r, c], abs=1e-6)

    def test_range_image_fallback_projection(self, rng):
        cloud = PointCloud(rng.normal(size=(200, 3)) + [5, 0, 0])
        image = build_range_image(cloud, rows=16, cols=60)
        assert image.shape == (16, 60)
        assert image.valid_mask().sum() > 0


class TestUniform:
    def test_one_per_voxel(self, rng):
        cloud = PointCloud(rng.uniform(0, 10, size=(500, 3)))
        keypoints = uniform_keypoints(cloud, voxel_size=2.5)
        assert 0 < len(keypoints) <= 5 * 5 * 5

    def test_rejects_nonpositive_voxel(self, rng):
        with pytest.raises(ValueError):
            uniform_keypoints(PointCloud(rng.normal(size=(5, 3))), voxel_size=0)


class TestDispatcher:
    def test_all_methods_dispatch(self, corner_cloud):
        cloud, searcher = corner_cloud
        for method, params in (
            ("harris", {"radius": 0.8}),
            ("uniform", {"voxel_size": 2.0}),
        ):
            config = KeypointConfig(method=method, params=params)
            keypoints = detect_keypoints(cloud, searcher, config)
            assert len(keypoints) >= config.min_keypoints

    def test_min_keypoints_topup(self, corner_cloud):
        cloud, searcher = corner_cloud
        config = KeypointConfig(
            method="harris",
            params={"radius": 0.8, "threshold": 1e9},  # finds nothing
            min_keypoints=12,
        )
        keypoints = detect_keypoints(cloud, searcher, config)
        assert len(keypoints) == 12

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            KeypointConfig(method="bogus")
