"""Degenerate-input behavior of every search backend.

The five backends share one interface and must agree on the edges:
empty result sets, k exceeding the point count, exact duplicates
(distance ties), single-point clouds, and invalid arguments.  Exact
backends must agree with brute force bit for bit in every such case;
the approximate backends must at least keep shapes, dtypes, and
ordering invariants.
"""

import numpy as np
import pytest

from repro.registration.search import SearchConfig, build_searcher

ALL_BACKENDS = ("canonical", "twostage", "approximate", "bruteforce", "gridhash")
EXACT_BACKENDS = ("canonical", "twostage", "bruteforce", "gridhash")


def searcher_for(points, backend):
    return build_searcher(points, SearchConfig(backend=backend, leaf_size=8))


@pytest.fixture()
def cloud():
    rng = np.random.default_rng(21)
    return rng.uniform(-3, 3, size=(120, 3))


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestEmptyResults:
    def test_zero_radius_off_point(self, backend, cloud):
        searcher = searcher_for(cloud, backend)
        indices, dists = searcher.radius(np.array([50.0, 50.0, 50.0]), 0.0)
        assert len(indices) == len(dists) == 0
        assert indices.dtype == np.int64
        assert dists.dtype == np.float64

    def test_tiny_radius_batch_all_empty(self, backend, cloud):
        searcher = searcher_for(cloud, backend)
        queries = cloud[:7] + 0.5  # nudged off every point
        idx_lists, dist_lists = searcher.radius_batch(queries, 1e-9)
        assert len(idx_lists) == len(dist_lists) == 7
        for indices, dists in zip(idx_lists, dist_lists):
            assert len(indices) == len(dists) == 0

    def test_zero_radius_on_point_returns_self(self, backend, cloud):
        if backend == "approximate":
            pytest.skip("follower shortcut may skip the exact self-match")
        searcher = searcher_for(cloud, backend)
        indices, dists = searcher.radius(cloud[13], 0.0)
        assert 13 in indices
        assert np.all(dists == 0.0)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestKExceedsN:
    def test_knn_clamps_to_n(self, backend, cloud):
        searcher = searcher_for(cloud, backend)
        indices, dists = searcher.knn(cloud[0], len(cloud) + 50)
        assert len(indices) <= len(cloud)
        if backend != "approximate":
            assert len(indices) == len(cloud)
            assert len(np.unique(indices)) == len(cloud)
            assert np.all(np.diff(dists) >= 0)

    def test_knn_batch_rectangle(self, backend, cloud):
        searcher = searcher_for(cloud, backend)
        queries = cloud[:5]
        indices, dists = searcher.knn_batch(queries, len(cloud) * 2)
        assert indices.shape == dists.shape == (5, len(cloud))

    def test_k_nonpositive_raises(self, backend, cloud):
        searcher = searcher_for(cloud, backend)
        with pytest.raises(ValueError):
            searcher.knn(cloud[0], 0)


class TestDuplicatePoints:
    """Exact duplicates manufacture ties; the shared (distance, index)
    rule must hold on every exact backend."""

    @pytest.fixture()
    def dup_cloud(self):
        rng = np.random.default_rng(8)
        base = rng.uniform(-2, 2, size=(40, 3))
        return np.vstack([base, base, base[:5]])  # every point at least twice

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_nn_prefers_lowest_index(self, backend, dup_cloud):
        searcher = searcher_for(dup_cloud, backend)
        for q in range(40, 80):  # the second copy of each point
            index, dist = searcher.nn(dup_cloud[q])
            assert dist == 0.0
            assert index == q - 40  # the first copy wins the tie

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_radius_returns_all_copies(self, backend, dup_cloud):
        searcher = searcher_for(dup_cloud, backend)
        indices, dists = searcher.radius(dup_cloud[3], 1e-12)
        copies = {3, 43, 83}  # base, duplicate block, head slice
        assert copies.issubset(set(indices.tolist()))
        assert np.all(np.diff(indices) > 0)  # ascending-index contract

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_knn_tie_order_matches_bruteforce(self, backend, dup_cloud):
        reference = searcher_for(dup_cloud, "bruteforce")
        searcher = searcher_for(dup_cloud, backend)
        for q in dup_cloud[:10]:
            bi, bd = reference.knn(q, 6)
            si, sd = searcher.knn(q, 6)
            # The tie-broken index order is the cross-backend contract;
            # distances agree only to the last ulp (the backends
            # accumulate squared distances in different orders).
            assert np.array_equal(bi, si)
            np.testing.assert_allclose(bd, sd, rtol=1e-12, atol=0.0)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestSinglePointCloud:
    def test_all_queries_resolve(self, backend):
        point = np.array([[1.0, -2.0, 0.5]])
        searcher = searcher_for(point, backend)
        index, dist = searcher.nn(np.zeros(3))
        assert index == 0
        assert dist == pytest.approx(np.sqrt(5.25))
        indices, dists = searcher.knn(np.zeros(3), 10)
        assert np.array_equal(indices, [0])
        near_i, near_d = searcher.radius(np.array([1.0, -2.0, 0.5]), 0.1)
        assert np.array_equal(near_i, [0]) and near_d[0] == 0.0
        far_i, far_d = searcher.radius(np.zeros(3), 0.1)
        assert len(far_i) == len(far_d) == 0


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestInvalidInputs:
    def test_empty_cloud_rejected_at_build(self, backend):
        with pytest.raises(ValueError):
            searcher_for(np.empty((0, 3)), backend)

    def test_negative_radius_rejected(self, backend, cloud):
        searcher = searcher_for(cloud, backend)
        with pytest.raises(ValueError):
            searcher.radius(cloud[0], -0.5)
