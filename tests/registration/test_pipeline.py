"""Integration-grade unit tests for the configurable pipeline."""

import numpy as np
import pytest

from repro.geometry import metrics
from repro.kdtree import SearchStats
from repro.profiling import StageProfiler
from repro.registration import (
    STAGE_NAMES,
    ICPConfig,
    KeypointConfig,
    KthNeighborInjector,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
    ShellRadiusInjector,
    register_pair,
)


def quick_config(**overrides) -> PipelineConfig:
    """A fast config for pipeline-shape tests on small frames."""
    config = PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=10
        ),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=1.5), max_iterations=8
        ),
        voxel_downsample=1.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestRegister:
    def test_produces_valid_transform(self, lidar_pair):
        source, target, gt = lidar_pair
        result = Pipeline(quick_config()).register(source, target)
        assert result.transformation.shape == (4, 4)
        assert np.all(np.isfinite(result.transformation))
        assert result.success

    def test_improves_over_identity(self, lidar_pair):
        source, target, gt = lidar_pair
        result = Pipeline(quick_config()).register(source, target)
        _, err = metrics.pair_errors(result.transformation, gt)
        _, identity_err = metrics.pair_errors(np.eye(4), gt)
        assert err < identity_err

    def test_initial_seed_skips_front_end(self, lidar_pair):
        source, target, gt = lidar_pair
        profiler = StageProfiler()
        result = Pipeline(quick_config()).register(
            source, target, initial=gt, profiler=profiler
        )
        assert result.n_source_keypoints == 0
        assert "Key-point Detection" not in profiler.stages
        assert np.array_equal(result.initial_transformation, gt)

    def test_skip_initial_estimation_flag(self, lidar_pair):
        source, target, _ = lidar_pair
        config = quick_config(skip_initial_estimation=True)
        result = Pipeline(config).register(source, target)
        assert result.n_feature_correspondences == 0
        assert np.array_equal(result.initial_transformation, np.eye(4))

    def test_empty_cloud_rejected(self, lidar_pair):
        import repro.io

        source, target, _ = lidar_pair
        empty = repro.io.PointCloud(np.empty((0, 3)))
        with pytest.raises(ValueError):
            Pipeline(quick_config()).register(empty, target)

    def test_register_pair_convenience(self, lidar_pair):
        source, target, _ = lidar_pair
        result = register_pair(source, target, quick_config())
        assert result.success


class TestInstrumentation:
    def test_all_stages_profiled(self, lidar_pair):
        source, target, _ = lidar_pair
        profiler = StageProfiler()
        Pipeline(quick_config()).register(source, target, profiler=profiler)
        for stage in STAGE_NAMES:
            assert stage in profiler.stages, stage

    def test_stage_stats_populated(self, lidar_pair):
        source, target, _ = lidar_pair
        result = Pipeline(quick_config()).register(source, target)
        assert result.stage_stats["Normal Estimation"].queries > 0
        assert result.stage_stats["RPCE"].queries > 0
        assert result.total_search_stats.nodes_visited > 0

    def test_kdtree_dominates_search_time(self, lidar_pair):
        """The paper's core observation (Fig. 4b): KD-tree search is a
        large share of registration time across design points."""
        source, target, _ = lidar_pair
        profiler = StageProfiler()
        Pipeline(quick_config()).register(source, target, profiler=profiler)
        fractions = profiler.kdtree_fractions()
        assert fractions["search"] > 0.3


class TestBackends:
    @pytest.mark.parametrize("backend", ["canonical", "twostage"])
    def test_exact_backends_equivalent_errors(self, lidar_pair, backend):
        source, target, gt = lidar_pair
        config = quick_config(search=SearchConfig(backend=backend))
        config.skip_initial_estimation = True
        result = Pipeline(config).register(source, target)
        # Both exact backends must find the same optimum.
        _, err = metrics.pair_errors(result.transformation, gt)
        assert err < 1.5

    def test_approximate_backend_close_to_exact(self, lidar_pair):
        source, target, gt = lidar_pair
        exact_cfg = quick_config(skip_initial_estimation=True)
        approx_cfg = quick_config(
            search=SearchConfig(backend="approximate"),
            skip_initial_estimation=True,
        )
        exact = Pipeline(exact_cfg).register(source, target)
        approx = Pipeline(approx_cfg).register(source, target)
        _, exact_err = metrics.pair_errors(exact.transformation, gt)
        _, approx_err = metrics.pair_errors(approx.transformation, gt)
        # Paper Sec. 6.3: approximation costs little end-to-end accuracy.
        assert approx_err < exact_err + 0.5

    def test_approximate_reduces_search_work(self, lidar_pair):
        source, target, _ = lidar_pair
        exact = Pipeline(
            quick_config(
                search=SearchConfig(backend="twostage", leaf_size=128),
                skip_initial_estimation=True,
            )
        ).register(source, target)
        approx = Pipeline(
            quick_config(
                search=SearchConfig(backend="approximate", leaf_size=128),
                skip_initial_estimation=True,
            )
        ).register(source, target)
        exact_work = exact.total_search_stats.nodes_visited
        approx_work = approx.total_search_stats.total_work
        assert approx_work < exact_work


class TestErrorInjection:
    def test_rpce_kth_injection_runs(self, lidar_pair):
        source, target, gt = lidar_pair
        config = quick_config(skip_initial_estimation=True)
        config.injectors = {"RPCE": KthNeighborInjector(k=2)}
        result = Pipeline(config).register(source, target)
        assert result.success

    def test_ne_shell_injection_runs(self, lidar_pair):
        source, target, _ = lidar_pair
        config = quick_config(skip_initial_estimation=True)
        config.injectors = {
            "Normal Estimation": ShellRadiusInjector(r1=0.1, r2=0.8)
        }
        result = Pipeline(config).register(source, target)
        assert result.success

    def test_dense_injection_tolerated(self, lidar_pair):
        """Paper Fig. 7: k-th NN errors in RPCE barely move the error."""
        source, target, gt = lidar_pair
        base = quick_config(skip_initial_estimation=True)
        clean = Pipeline(base).register(source, target)
        injected_cfg = quick_config(skip_initial_estimation=True)
        injected_cfg.injectors = {"RPCE": KthNeighborInjector(k=2)}
        injected = Pipeline(injected_cfg).register(source, target)
        _, clean_err = metrics.pair_errors(clean.transformation, gt)
        _, injected_err = metrics.pair_errors(injected.transformation, gt)
        assert injected_err < clean_err + 0.6


class TestSummary:
    def test_summary_mentions_key_facts(self, lidar_pair):
        source, target, _ = lidar_pair
        result = Pipeline(quick_config()).register(source, target)
        text = result.summary()
        assert "registration succeeded" in text
        assert "node visits" in text
        assert "fine-tuning" in text
