"""Batch/scalar parity: batched queries must be bit-identical to
per-query calls on every backend, with and without error injectors.

These are the acceptance tests of the batch query layer: no tolerance
comparisons — indices and distances must match exactly, including tie
cases manufactured through duplicated points.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdtree.stats import SearchStats
from repro.registration.error_injection import (
    IdentityInjector,
    KthNeighborInjector,
    ShellRadiusInjector,
)
from repro.registration.search import NeighborSearcher, SearchConfig, build_searcher

BACKENDS = ("canonical", "twostage", "approximate", "bruteforce", "gridhash")


def make_cloud(seed: int, n: int, duplicates: bool = False) -> np.ndarray:
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3)) * 3.0
    if duplicates:
        # Exact duplicates manufacture distance ties; the deterministic
        # tie rules must agree between scalar and batch paths.
        points = np.vstack([points, points[:: max(1, n // 7)]])
    return points


def make_queries(seed: int, points: np.ndarray, n_queries: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 1)
    near = points[rng.integers(0, len(points), size=n_queries // 2)]
    near = near + rng.normal(size=near.shape) * 0.05
    far = rng.normal(size=(n_queries - len(near), 3)) * 4.0
    return np.vstack([near, far])


def pair_of_searchers(points, backend, injector=None):
    """Two independently built searchers (fresh approximate leader state
    each) so the scalar loop and the batch see identical start states."""
    config = SearchConfig(backend=backend, leaf_size=16)
    scalar = build_searcher(points, config, injector=injector)
    batched = build_searcher(points, config, injector=injector)
    return scalar, batched


@pytest.mark.parametrize("backend", BACKENDS)
@given(seed=st.integers(0, 2**32 - 1), duplicates=st.booleans())
@settings(max_examples=10, deadline=None)
def test_nn_batch_parity(backend, seed, duplicates):
    points = make_cloud(seed, 60, duplicates)
    queries = make_queries(seed, points, 20)
    scalar, batched = pair_of_searchers(points, backend)
    expected = [scalar.nn(q) for q in queries]
    indices, dists = batched.nn_batch(queries)
    assert np.array_equal(indices, np.array([e[0] for e in expected]))
    assert np.array_equal(dists, np.array([e[1] for e in expected]))


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    seed=st.integers(0, 2**32 - 1),
    k=st.integers(1, 100),
    duplicates=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_knn_batch_parity(backend, seed, k, duplicates):
    """Includes k > n: results are rectangular (Q, min(k, n))."""
    points = make_cloud(seed, 50, duplicates)
    queries = make_queries(seed, points, 12)
    scalar, batched = pair_of_searchers(points, backend)
    indices, dists = batched.knn_batch(queries, k)
    assert indices.shape == dists.shape == (len(queries), min(k, len(points)))
    for i, q in enumerate(queries):
        row_idx, row_dist = scalar.knn(q, k)
        # The approximate backend pads short rows with (-1, inf).
        assert np.array_equal(indices[i, : len(row_idx)], row_idx)
        assert np.array_equal(dists[i, : len(row_dist)], row_dist)
        assert np.all(indices[i, len(row_idx) :] == -1)
        assert np.all(np.isinf(dists[i, len(row_dist) :]))


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    seed=st.integers(0, 2**32 - 1),
    r=st.sampled_from([0.0, 1e-6, 0.4, 1.5, 50.0]),
    sort=st.booleans(),
    duplicates=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_radius_batch_parity(backend, seed, r, sort, duplicates):
    """Includes r=0 and tiny r (empty result sets) and huge r (all)."""
    points = make_cloud(seed, 60, duplicates)
    queries = make_queries(seed, points, 15)
    scalar, batched = pair_of_searchers(points, backend)
    all_indices, all_dists = batched.radius_batch(queries, r, sort=sort)
    assert len(all_indices) == len(all_dists) == len(queries)
    for i, q in enumerate(queries):
        row_idx, row_dist = scalar.radius(q, r, sort=sort)
        assert np.array_equal(all_indices[i], row_idx)
        assert np.array_equal(all_dists[i], row_dist)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "injector",
    [
        IdentityInjector(),
        KthNeighborInjector(k=3),
        ShellRadiusInjector(r1=0.2, r2=1.2),
    ],
    ids=["identity", "kth", "shell"],
)
def test_injected_batch_parity(backend, injector):
    points = make_cloud(7, 70)
    queries = make_queries(7, points, 18)
    scalar, batched = pair_of_searchers(points, backend, injector=injector)

    expected = [scalar.nn(q) for q in queries]
    indices, dists = batched.nn_batch(queries)
    assert np.array_equal(indices, np.array([e[0] for e in expected]))
    assert np.array_equal(dists, np.array([e[1] for e in expected]))

    scalar, batched = pair_of_searchers(points, backend, injector=injector)
    all_indices, all_dists = batched.radius_batch(queries, 0.9)
    for i, q in enumerate(queries):
        row_idx, row_dist = scalar.radius(q, 0.9)
        assert np.array_equal(all_indices[i], row_idx)
        assert np.array_equal(all_dists[i], row_dist)

    scalar, batched = pair_of_searchers(points, backend, injector=injector)
    indices, dists = batched.knn_batch(queries, 4)
    for i, q in enumerate(queries):
        row_idx, row_dist = scalar.knn(q, 4)
        assert np.array_equal(indices[i, : len(row_idx)], row_idx)
        assert np.array_equal(dists[i, : len(row_dist)], row_dist)


def test_scalar_injector_fallback():
    """Third-party injectors without batch hooks fall back to a loop."""

    class ScalarOnlyInjector:
        def nn(self, index, query, stats):
            return index.nn(query, stats)

        def knn(self, index, query, k, stats):
            return index.knn(query, k, stats)

        def radius(self, index, query, r, stats, sort=False):
            return index.radius(query, r, stats, sort=sort)

    points = make_cloud(3, 40)
    queries = make_queries(3, points, 10)
    plain = build_searcher(points, SearchConfig(backend="twostage"))
    wrapped = build_searcher(
        points, SearchConfig(backend="twostage"), injector=ScalarOnlyInjector()
    )
    for (a, b), (c, d) in [
        (plain.nn_batch(queries), wrapped.nn_batch(queries)),
        (plain.knn_batch(queries, 3), wrapped.knn_batch(queries, 3)),
    ]:
        assert np.array_equal(np.asarray(a), np.asarray(c))
        assert np.array_equal(np.asarray(b), np.asarray(d))


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_stats_per_query_counters(backend):
    """One batch charges one ``batches`` tick but exact per-query counts."""
    points = make_cloud(11, 80)
    queries = make_queries(11, points, 25)
    stats = SearchStats()
    searcher = build_searcher(
        points, SearchConfig(backend=backend, leaf_size=16), stats=stats
    )
    searcher.nn_batch(queries)
    assert stats.batches == 1
    assert stats.queries == len(queries)
    assert stats.results_returned == len(queries)
    searcher.radius_batch(queries, 0.8)
    assert stats.batches == 2
    assert stats.queries == 2 * len(queries)


@pytest.mark.parametrize("backend", BACKENDS)
def test_radius_stats_match_scalar(backend):
    """Radius batch work counters equal the scalar loop's exactly (the
    pruning decisions are query-independent)."""
    if backend == "approximate":
        pytest.skip("leader state makes scalar-loop stats the definition")
    points = make_cloud(13, 90)
    queries = make_queries(13, points, 20)
    config = SearchConfig(backend=backend, leaf_size=16)
    s1, s2 = SearchStats(), SearchStats()
    scalar = build_searcher(points, config, stats=s1)
    batched = build_searcher(points, config, stats=s2)
    for q in queries:
        scalar.radius(q, 0.7)
    batched.radius_batch(queries, 0.7)
    assert (s1.nodes_visited, s1.traversal_steps, s1.pruned_subtrees) == (
        s2.nodes_visited,
        s2.traversal_steps,
        s2.pruned_subtrees,
    )


class TestCanonicalFrontierParity:
    """The canonical KD-tree's level-synchronous frontier sweep must be
    bit-identical to its pinned sequential per-query loop.  Radius
    sweeps also charge identical work counters (radius pruning is
    bound-independent, so the frontier replays the exact schedule);
    nn/knn frontiers tighten their bounds in level order rather than
    depth-first order, so only their results — not their node visit
    counts — are pinned."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        duplicates=st.booleans(),
        k=st.integers(1, 80),
        r=st.sampled_from([0.0, 1e-6, 0.4, 1.5, 50.0]),
    )
    @settings(max_examples=15, deadline=None)
    def test_frontier_equals_sequential(self, seed, duplicates, k, r):
        from repro.kdtree.tree import KDTree

        points = make_cloud(seed, 70, duplicates)
        queries = make_queries(seed, points, 18)
        tree = KDTree(points)

        s_seq, s_fast = SearchStats(), SearchStats()
        si, sd = tree.nn_batch(queries, s_seq, sequential=True)
        fi, fd = tree.nn_batch(queries, s_fast)
        assert np.array_equal(si, fi) and np.array_equal(sd, fd)
        assert (s_seq.queries, s_seq.results_returned) == (
            s_fast.queries,
            s_fast.results_returned,
        )

        s_seq, s_fast = SearchStats(), SearchStats()
        si, sd = tree.knn_batch(queries, k, s_seq, sequential=True)
        fi, fd = tree.knn_batch(queries, k, s_fast)
        assert np.array_equal(si, fi) and np.array_equal(sd, fd)
        assert (s_seq.queries, s_seq.results_returned) == (
            s_fast.queries,
            s_fast.results_returned,
        )

        for sort in (False, True):
            s_seq, s_fast = SearchStats(), SearchStats()
            si, sd = tree.radius_batch(queries, r, s_seq, sort=sort, sequential=True)
            fi, fd = tree.radius_batch(queries, r, s_fast, sort=sort)
            for a, b, c, d in zip(si, fi, sd, fd):
                assert np.array_equal(a, b) and np.array_equal(c, d)
            assert s_seq == s_fast


def test_uniform_points_property():
    points = make_cloud(17, 30)
    for backend in BACKENDS:
        searcher = build_searcher(points, SearchConfig(backend=backend))
        assert np.array_equal(searcher.points, points)
        assert np.array_equal(searcher.index.points, points)
