"""Unit tests for the transformation estimators (Kabsch, point-to-plane, LM)."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.registration import kabsch, levenberg_marquardt, point_to_plane


@pytest.fixture
def correspondence_set(rng):
    source = rng.normal(size=(60, 3)) * 3.0
    gt = se3.make_transform(
        se3.axis_angle_to_rotation(rng.normal(size=3), 0.4), [0.5, -0.3, 0.8]
    )
    target = se3.apply_transform(gt, source)
    return source, target, gt


class TestKabsch:
    def test_recovers_exact_transform(self, correspondence_set):
        source, target, gt = correspondence_set
        estimate = kabsch(source, target)
        rot, trans = se3.transform_distance(gt, estimate)
        assert rot < 1e-9
        assert trans < 1e-9

    def test_identity_for_identical(self, rng):
        points = rng.normal(size=(10, 3))
        assert np.allclose(kabsch(points, points), np.eye(4), atol=1e-12)

    def test_result_is_rigid(self, correspondence_set, rng):
        source, target, _ = correspondence_set
        noisy = target + rng.normal(scale=0.1, size=target.shape)
        estimate = kabsch(source, noisy)
        assert se3.is_valid_transform(estimate)

    def test_noise_robustness(self, correspondence_set, rng):
        source, target, gt = correspondence_set
        noisy = target + rng.normal(scale=0.01, size=target.shape)
        estimate = kabsch(source, noisy)
        rot, trans = se3.transform_distance(gt, estimate)
        assert rot < 0.02
        assert trans < 0.02

    def test_weights_downweight_outliers(self, correspondence_set):
        source, target, gt = correspondence_set
        corrupted = target.copy()
        corrupted[0] += 100.0  # gross outlier
        weights = np.ones(len(source))
        weights[0] = 0.0
        estimate = kabsch(source, corrupted, weights)
        rot, trans = se3.transform_distance(gt, estimate)
        assert trans < 1e-9

    def test_handles_reflection_degeneracy(self):
        # Coplanar points that would tempt a reflection solution.
        source = np.array(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], dtype=float
        )
        target = source[:, [1, 0, 2]]  # mirror swap x<->y
        estimate = kabsch(source, target)
        assert se3.is_valid_transform(estimate)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kabsch(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))
        with pytest.raises(ValueError):
            kabsch(rng.normal(size=(5, 3)), rng.normal(size=(4, 3)))
        points = rng.normal(size=(5, 3))
        with pytest.raises(ValueError):
            kabsch(points, points, weights=np.zeros(5))


class TestPointToPlane:
    def test_recovers_small_transform(self, rng):
        # Points on varied planes; small motion (linearization regime).
        source = rng.normal(size=(100, 3)) * 2.0
        normals = rng.normal(size=(100, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        gt = se3.make_transform(
            se3.axis_angle_to_rotation([0.3, -0.2, 0.9], 0.02), [0.05, -0.02, 0.03]
        )
        target = se3.apply_transform(gt, source)
        estimate = point_to_plane(source, target, normals)
        rot, trans = se3.transform_distance(gt, estimate)
        assert rot < 1e-3
        assert trans < 1e-3

    def test_sliding_along_plane_is_free(self):
        # All normals along z: x/y translation must not be constrained,
        # but z translation must be recovered exactly.
        rng = np.random.default_rng(0)
        source = np.column_stack(
            [rng.uniform(0, 5, 50), rng.uniform(0, 5, 50), np.zeros(50)]
        )
        target = source + [0.0, 0.0, 0.25]
        normals = np.tile([0.0, 0.0, 1.0], (50, 1))
        estimate = point_to_plane(source, target, normals)
        assert se3.translation_part(estimate)[2] == pytest.approx(0.25, abs=1e-9)

    def test_validation(self, rng):
        a = rng.normal(size=(3, 3))
        with pytest.raises(ValueError):
            point_to_plane(a, a, a)  # fewer than 6 pairs
        with pytest.raises(ValueError):
            point_to_plane(
                rng.normal(size=(8, 3)),
                rng.normal(size=(8, 3)),
                rng.normal(size=(7, 3)),
            )


class TestLevenbergMarquardt:
    def test_point_to_point_recovers_large_transform(self, correspondence_set):
        source, target, gt = correspondence_set
        estimate = levenberg_marquardt(source, target, max_iterations=50)
        rot, trans = se3.transform_distance(gt, estimate)
        assert rot < 1e-6
        assert trans < 1e-6

    def test_point_to_plane_mode(self, rng):
        source = rng.normal(size=(80, 3)) * 2.0
        normals = rng.normal(size=(80, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        gt = se3.make_transform(
            se3.axis_angle_to_rotation([1, 2, 3], 0.1), [0.2, 0.1, -0.1]
        )
        target = se3.apply_transform(gt, source)
        estimate = levenberg_marquardt(source, target, normals, max_iterations=50)
        moved = se3.apply_transform(estimate, source)
        residuals = np.einsum("ij,ij->i", moved - target, normals)
        assert np.sqrt(np.mean(residuals**2)) < 1e-6

    def test_converges_from_noise(self, correspondence_set, rng):
        source, target, gt = correspondence_set
        noisy = target + rng.normal(scale=0.02, size=target.shape)
        estimate = levenberg_marquardt(source, noisy, max_iterations=50)
        rot, trans = se3.transform_distance(gt, estimate)
        assert rot < 0.05
        assert trans < 0.05

    def test_result_always_rigid(self, rng):
        source = rng.normal(size=(20, 3))
        target = rng.normal(size=(20, 3))  # unrelated clouds
        estimate = levenberg_marquardt(source, target)
        assert se3.is_valid_transform(estimate)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            levenberg_marquardt(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))
