"""The failure-aware recovery ladder and its bookkeeping.

The contract under test: recovery enabled on a *clean* sequence changes
nothing (bit-identical trajectory, zero unhealthy pairs); an unhealthy
pair climbs reseed -> widen -> bridge deterministically; retries are
re-judged on intrinsic quality with the motion-model gates disabled, so
a self-consistent solve that genuinely disagrees with the prior is kept
rather than bridged away; and every action lands in
:class:`~repro.registration.odometry.OdometryStats` and the extended
profiler report.
"""

import numpy as np
import pytest

from repro.io import make_sequence
from repro.registration import (
    HealthConfig,
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    RecoveryConfig,
    StreamingOdometry,
    run_odometry,
    run_streaming_odometry,
)


def quick_pipeline(**icp_overrides) -> Pipeline:
    icp = dict(
        rpce=RPCEConfig(max_distance=2.0),
        error_metric="point_to_plane",
        max_iterations=6,
    )
    icp.update(icp_overrides)
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
            ),
            icp=ICPConfig(**icp),
        )
    )


@pytest.fixture(scope="module")
def sequence():
    return make_sequence(n_frames=4, seed=7)


class TestCleanSequenceTransparency:
    def test_bit_identical_with_recovery_enabled(self, sequence):
        plain = run_streaming_odometry(sequence, quick_pipeline())
        gated = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=RecoveryConfig()
        )
        assert all(
            np.array_equal(ours, reference)
            for ours, reference in zip(gated.trajectory, plain.trajectory)
        )
        assert gated.stats.n_unhealthy == 0
        assert gated.stats.n_reseeded == 0
        assert gated.stats.n_widened == 0
        assert gated.stats.n_bridged == 0
        assert gated.stats.degraded_pairs == []

    def test_health_recorded_per_pair(self, sequence):
        gated = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=RecoveryConfig()
        )
        assert len(gated.stats.pair_health) == gated.n_pairs
        assert all(
            health is not None and health.healthy
            for health in gated.stats.pair_health
        )
        assert all(actions == () for actions in gated.stats.pair_actions)

    def test_no_recovery_means_no_assessment(self, sequence):
        plain = run_streaming_odometry(sequence, quick_pipeline())
        assert all(health is None for health in plain.stats.pair_health)


class TestLadder:
    def test_impossible_gate_bridges_with_prior(self, sequence):
        # A gate nothing can pass forces the full ladder on every pair.
        recovery = RecoveryConfig(
            health=HealthConfig(max_median_residual=1e-12)
        )
        result = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=recovery
        )
        stats = result.stats
        assert stats.n_unhealthy == result.n_pairs
        assert stats.degraded_pairs == list(range(result.n_pairs))
        assert stats.n_recovered == 0
        # Pair 0 has no motion model yet: nothing to bridge with, the
        # unhealthy measurement is kept.  Every later pair is bridged
        # with the prior — which is pair 0's transform, propagated
        # forward by the bridge itself.
        assert stats.n_bridged == result.n_pairs - 1
        for relative in result.relatives[1:]:
            assert np.array_equal(relative, result.relatives[0])
        for actions in stats.pair_actions[1:]:
            assert actions[-1] == "bridge"

    def test_widened_retry_runs_before_bridging(self, sequence):
        recovery = RecoveryConfig(
            health=HealthConfig(max_median_residual=1e-12)
        )
        result = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=recovery
        )
        assert result.stats.n_widened == result.n_pairs
        for actions in result.stats.pair_actions:
            assert "widen" in actions

    def test_disabled_rungs_skip_to_bridge(self, sequence):
        recovery = RecoveryConfig(
            health=HealthConfig(max_median_residual=1e-12),
            reseed_from_prior=False,
            widened_retry=False,
        )
        result = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=recovery
        )
        assert result.stats.n_widened == 0
        assert result.stats.n_reseeded == 0
        assert result.stats.n_bridged == result.n_pairs - 1

    def test_failure_reasons_counted(self, sequence):
        recovery = RecoveryConfig(
            health=HealthConfig(max_median_residual=1e-12)
        )
        result = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=recovery
        )
        assert result.stats.failure_counts.get("median_residual", 0) > 0

    def test_prior_disagreement_alone_is_retried_not_bridged(self, sequence):
        # A zero-tolerance motion-model gate flags every seeded pair,
        # but the retry rungs re-judge on intrinsic quality (prior
        # gates disabled): a self-consistent re-solve is accepted, so
        # nothing gets bridged and the trajectory stays the measured
        # one.
        recovery = RecoveryConfig(
            health=HealthConfig(prior_translation_tolerance=1e-12)
        )
        plain = run_streaming_odometry(sequence, quick_pipeline())
        gated = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=recovery
        )
        stats = gated.stats
        # Pair 0 is unseeded (no prior yet): the gate cannot fire there.
        assert stats.n_unhealthy == gated.n_pairs - 1
        assert stats.n_bridged == 0
        assert stats.degraded_pairs == []
        assert stats.n_recovered == stats.n_unhealthy
        # The accepted retries re-solve through the widened rung (the
        # reseed rung is skipped: the failed attempt already used the
        # prior seed), so the relatives agree with the ungated run to
        # within the wider correspondence radius's refinement noise —
        # crucially they are measurements, not the prior substitute.
        for ours, reference in zip(gated.relatives, plain.relatives):
            assert np.allclose(ours, reference, atol=5e-3)

    def test_widened_pipeline_scales_pairwise_knobs_only(self, sequence):
        engine = StreamingOdometry(
            quick_pipeline(),
            recovery=RecoveryConfig(
                rpce_distance_scale=2.0, icp_iteration_scale=2.0
            ),
        )
        widened = engine._widened_pipeline().config
        base = engine.pipeline.config
        assert widened.icp.rpce.max_distance == pytest.approx(
            base.icp.rpce.max_distance * 2.0
        )
        assert widened.icp.max_iterations == base.icp.max_iterations * 2
        assert widened.normals == base.normals
        assert widened.keypoints == base.keypoints
        # Built once, reused.
        assert engine._widened_pipeline() is engine._widened_pipeline()


class TestNonConvergedCounting:
    def test_both_drivers_count(self, sequence):
        # One iteration with epsilon criteria it cannot meet: every
        # pair stops on the budget.
        pipeline = quick_pipeline(
            max_iterations=1,
            transformation_epsilon=1e-15,
            fitness_epsilon=1e-15,
        )
        pairwise = run_odometry(sequence, pipeline)
        streaming = run_streaming_odometry(sequence, pipeline)
        assert pairwise.stats.n_nonconverged == pairwise.n_pairs
        assert streaming.stats.n_nonconverged == streaming.n_pairs

    def test_summary_and_extended_report(self, sequence):
        recovery = RecoveryConfig(
            health=HealthConfig(max_median_residual=1e-12)
        )
        result = run_streaming_odometry(
            sequence, quick_pipeline(), recovery=recovery
        )
        summary = result.stats.summary()
        assert "unhealthy" in summary
        assert "bridged" in summary
        report = result.profiler.report(
            extended=True, odometry_stats=result.stats
        )
        assert "health:" in report
        assert "non-converged" in report
        # The plain report stays free of health lines.
        assert "health:" not in result.profiler.report()
