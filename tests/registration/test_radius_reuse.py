"""Nested-radius search reuse: one inflated search, bit-identical stages.

``Pipeline.preprocess`` plans the largest radius any front-end stage
will request, runs ONE all-points radius search at that radius, and
serves every nested stage neighborhood by filtering the cached CSR
result (:class:`repro.registration.search.RadiusReuseCache`).  These
tests pin the two contracts that make that safe:

* **Bit-identity** — every preprocessing artifact (normals, keypoints,
  descriptors) is exactly what the same config produces with reuse
  disabled, across every backend and keypoint/descriptor combination.
  The golden-values re-pin of tests/integration/test_golden_values.py
  leans on this file for that claim.
* **Honest accounting** — the filling stage is charged the inflated
  search it executed; served stages charge ``queries`` /
  ``reused_queries`` / ``cache_hits`` and their filtered result counts
  but no traversal work; and the cache is bypassed in every situation
  where serving could change results (injectors, foreign indices,
  radii beyond the plan, subset-first fills).
"""

import numpy as np
import pytest

from repro.kdtree import SearchStats
from repro.registration import (
    DescriptorConfig,
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
)
from repro.registration.error_injection import IdentityInjector
from repro.registration.search import (
    NeighborSearcher,
    RadiusReuseCache,
    build_index,
    exact_index,
)

EXACT_BACKENDS = ("canonical", "twostage", "bruteforce", "gridhash")
ALL_BACKENDS = EXACT_BACKENDS + ("approximate",)


def reuse_pipeline(backend="twostage", keypoints=None, descriptor=None):
    config = PipelineConfig(
        keypoints=keypoints
        or KeypointConfig(method="harris", params={"radius": 1.0}, min_keypoints=8),
        descriptor=descriptor or DescriptorConfig(method="fpfh", radius=1.0),
        icp=ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=5),
        voxel_downsample=1.0,
        search=SearchConfig(backend=backend, leaf_size=16),
    )
    return Pipeline(config)


def preprocess_without_reuse(pipeline, cloud, monkeypatch):
    """The same preprocess with the reuse plan forced off."""
    import repro.registration.pipeline as pipeline_mod

    with monkeypatch.context() as m:
        m.setattr(pipeline_mod, "_planned_reuse_radius", lambda config: None)
        return pipeline.preprocess(cloud, with_features=True)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_all_backends_harris_fpfh(self, backend, lidar_pair, monkeypatch):
        source, _, _ = lidar_pair
        pipeline = reuse_pipeline(backend=backend)
        with_reuse = pipeline.preprocess(source, with_features=True)
        baseline = preprocess_without_reuse(pipeline, source, monkeypatch)
        assert np.array_equal(
            with_reuse.cloud.get_attribute("normals"),
            baseline.cloud.get_attribute("normals"),
        )
        assert np.array_equal(with_reuse.keypoints, baseline.keypoints)
        assert np.array_equal(with_reuse.descriptors, baseline.descriptors)

    @pytest.mark.parametrize(
        "keypoints, descriptor",
        [
            (
                KeypointConfig(
                    method="sift",
                    params={
                        "min_scale": 0.5,
                        "n_octaves": 2,
                        "scales_per_octave": 2,
                    },
                    min_keypoints=8,
                ),
                DescriptorConfig(method="shot", radius=1.0),
            ),
            (
                KeypointConfig(
                    method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
                ),
                DescriptorConfig(method="3dsc", radius=1.0),
            ),
            (
                KeypointConfig(
                    method="harris", params={"radius": 0.8}, min_keypoints=8
                ),
                DescriptorConfig(method="3dsc", radius=1.2),
            ),
        ],
        ids=["sift-shot", "uniform-3dsc", "harris-3dsc"],
    )
    def test_stage_combinations(self, keypoints, descriptor, lidar_pair, monkeypatch):
        source, _, _ = lidar_pair
        pipeline = reuse_pipeline(keypoints=keypoints, descriptor=descriptor)
        with_reuse = pipeline.preprocess(source, with_features=True)
        baseline = preprocess_without_reuse(pipeline, source, monkeypatch)
        assert np.array_equal(
            with_reuse.cloud.get_attribute("normals"),
            baseline.cloud.get_attribute("normals"),
        )
        assert np.array_equal(with_reuse.keypoints, baseline.keypoints)
        assert np.array_equal(with_reuse.descriptors, baseline.descriptors)


class TestAccounting:
    def test_fill_and_serve_attribution(self, lidar_pair):
        """Exact backend: NE fills (fresh, inflated), later stages serve."""
        source, _, _ = lidar_pair
        state = reuse_pipeline().preprocess(source, with_features=True)
        n = len(state.cloud)

        ne = state.stats["Normal Estimation"]
        assert ne.queries == n
        assert ne.reused_queries == 0
        assert ne.cache_hits == 0
        assert ne.nodes_visited > 0

        kpd = state.stats["Key-point Detection"]
        assert kpd.queries == n  # Harris supports every point...
        assert kpd.reused_queries == n  # ...all served from the cache
        assert kpd.cache_hits == 1
        assert kpd.nodes_visited == 0

        desc = state.stats["Descriptor Calculation"]
        assert desc.queries > 0
        assert desc.reused_queries == desc.queries
        assert desc.cache_hits >= 1  # FPFH: keypoint + extra-SPFH passes
        assert desc.nodes_visited == 0

    def test_approximate_backend_fills_at_first_exact_stage(self, lidar_pair):
        """Approximate NE runs on a fresh stateful view the cache must
        not serve; the first exact full-cloud stage fills instead."""
        source, _, _ = lidar_pair
        state = reuse_pipeline(backend="approximate").preprocess(
            source, with_features=True
        )
        assert state.stats["Normal Estimation"].reused_queries == 0
        kpd = state.stats["Key-point Detection"]
        assert kpd.reused_queries == 0  # this stage executed the fill
        assert kpd.nodes_visited > 0
        desc = state.stats["Descriptor Calculation"]
        assert desc.reused_queries == desc.queries > 0
        assert desc.nodes_visited == 0

    def test_streaming_stats_balance(self, urban_sequence=None):
        """Streaming odometry with reuse active: per-pair counters stay
        internally consistent, and reuse actually engages."""
        from repro.io import make_sequence
        from repro.registration import run_streaming_odometry

        sequence = make_sequence(n_frames=3, seed=11, step=1.0)
        result = run_streaming_odometry(
            sequence, reuse_pipeline(), seed_with_previous=False
        )
        engaged = 0
        for pair in result.pair_results:
            for stage, stats in pair.stage_stats.items():
                assert 0 <= stats.reused_queries <= stats.queries, stage
                if stats.cache_hits == 0:
                    assert stats.reused_queries == 0, stage
                engaged += stats.reused_queries
        assert engaged > 0


class TestBypasses:
    def make_searcher(self, points, max_radius, injector=None, foreign=False):
        index, _ = build_index(points, SearchConfig(backend="twostage"))
        cache_index = (
            build_index(points, SearchConfig(backend="twostage"))[0]
            if foreign
            else exact_index(index)
        )
        stats = SearchStats()
        searcher = NeighborSearcher(
            index,
            stats,
            0.0,
            injector=injector,
            reuse=RadiusReuseCache(cache_index, max_radius),
        )
        return searcher, stats

    @pytest.fixture()
    def points(self):
        rng = np.random.default_rng(5)
        return rng.uniform(-4, 4, size=(300, 3))

    def test_served_results_bit_identical(self, points):
        searcher, _ = self.make_searcher(points, max_radius=1.5)
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 1.5, self_indices=rows)  # fill
        fresh, _ = self.make_searcher(points, max_radius=0.0)
        subset = rows[::3]
        for r in (0.0, 0.4, 1.0, 1.5):
            for sort in (False, True):
                si, sd = searcher.radius_batch(
                    points[subset], r, sort=sort, self_indices=subset
                )
                fi, fd = fresh.radius_batch(points[subset], r, sort=sort)
                for a, b, c, d in zip(si, fi, sd, fd):
                    assert np.array_equal(a, b) and np.array_equal(c, d)

    def test_radius_beyond_plan_searches_fresh(self, points):
        searcher, stats = self.make_searcher(points, max_radius=1.0)
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 1.0, self_indices=rows)  # fill
        searcher.radius_batch(points, 2.0, self_indices=rows)
        assert stats.reused_queries == 0
        assert stats.cache_hits == 0

    def test_subset_first_does_not_fill(self, points):
        searcher, stats = self.make_searcher(points, max_radius=1.0)
        subset = np.arange(0, len(points), 2, dtype=np.int64)
        searcher.radius_batch(points[subset], 0.5, self_indices=subset)
        assert not searcher._reuse.filled
        assert stats.reused_queries == 0
        # A full-cloud call later still fills and serves.
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 0.5, self_indices=rows)
        assert searcher._reuse.filled
        searcher.radius_batch(points[subset], 0.5, self_indices=subset)
        assert stats.reused_queries == len(subset)

    def test_no_self_indices_searches_fresh(self, points):
        searcher, stats = self.make_searcher(points, max_radius=1.0)
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 1.0, self_indices=rows)  # fill
        searcher.radius_batch(points, 0.5)
        assert stats.reused_queries == 0

    def test_injector_bypasses_cache(self, points):
        searcher, stats = self.make_searcher(
            points, max_radius=1.0, injector=IdentityInjector()
        )
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 1.0, self_indices=rows)
        searcher.radius_batch(points, 0.5, self_indices=rows)
        assert stats.reused_queries == 0
        assert stats.cache_hits == 0

    def test_foreign_index_cache_is_dropped(self, points):
        searcher, stats = self.make_searcher(points, max_radius=1.0, foreign=True)
        assert searcher._reuse is None
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 1.0, self_indices=rows)
        searcher.radius_batch(points, 0.5, self_indices=rows)
        assert stats.reused_queries == 0

    def test_cache_immutable_after_fill(self, points):
        searcher, _ = self.make_searcher(points, max_radius=1.0)
        rows = np.arange(len(points), dtype=np.int64)
        searcher.radius_batch(points, 1.0, self_indices=rows)
        cache = searcher._reuse
        before = cache._indices.copy(), cache._dists.copy()
        searcher.radius_batch(points, 0.7, self_indices=rows)
        searcher.radius_batch(points[rows[::5]], 0.2, self_indices=rows[::5])
        assert np.array_equal(cache._indices, before[0])
        assert np.array_equal(cache._dists, before[1])


class TestStateLifecycle:
    def test_featured_state_drops_cache(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = reuse_pipeline()
        bare = pipeline.preprocess(source, with_features=False)
        assert bare.reuse is not None
        featured = pipeline.ensure_features(bare)
        assert featured.reuse is None
        # The bare state keeps its (now filled) cache: a second
        # ensure_features reuses identically.
        assert bare.reuse is not None and bare.reuse.filled
        again = pipeline.ensure_features(bare)
        assert np.array_equal(featured.descriptors, again.descriptors)
        assert featured.stats == again.stats

    def test_skip_initial_estimation_plans_no_reuse(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = reuse_pipeline()
        pipeline.config.skip_initial_estimation = True
        state = pipeline.preprocess(source)
        assert state.reuse is None
        assert state.stats["Normal Estimation"].reused_queries == 0
