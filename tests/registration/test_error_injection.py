"""Unit tests for the Fig. 7 error injectors."""

import numpy as np
import pytest

from repro.kdtree import SearchStats, bruteforce
from repro.registration import (
    IdentityInjector,
    KthNeighborInjector,
    SearchConfig,
    ShellRadiusInjector,
    build_searcher,
)


@pytest.fixture
def setup(rng):
    points = rng.normal(size=(200, 3))
    return points


class TestIdentityInjector:
    def test_passthrough(self, setup, rng):
        points = setup
        searcher = build_searcher(points, SearchConfig(), injector=IdentityInjector())
        plain = build_searcher(points, SearchConfig())
        query = rng.normal(size=3)
        assert searcher.nn(query) == plain.nn(query)


class TestKthNeighbor:
    def test_k1_is_exact(self, setup, rng):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=KthNeighborInjector(k=1)
        )
        query = rng.normal(size=3)
        idx, dist = searcher.nn(query)
        bf_idx, bf_dist = bruteforce.nn(points, query)
        assert idx == bf_idx
        assert dist == pytest.approx(bf_dist)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_returns_kth_neighbor(self, setup, rng, k):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=KthNeighborInjector(k=k)
        )
        query = rng.normal(size=3)
        idx, dist = searcher.nn(query)
        bf_indices, bf_dists = bruteforce.knn(points, query, k)
        assert idx == bf_indices[-1]
        assert dist == pytest.approx(bf_dists[-1])

    def test_knn_shifted(self, setup, rng):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=KthNeighborInjector(k=3)
        )
        query = rng.normal(size=3)
        indices, dists = searcher.knn(query, 4)
        bf_indices, bf_dists = bruteforce.knn(points, query, 6)
        assert np.array_equal(indices, bf_indices[2:])
        assert np.allclose(dists, bf_dists[2:])

    def test_radius_untouched(self, setup, rng):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=KthNeighborInjector(k=4)
        )
        query = rng.normal(size=3)
        indices, _ = searcher.radius(query, 0.8)
        bf_indices, _ = bruteforce.radius(points, query, 0.8)
        assert set(indices.tolist()) == set(bf_indices.tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            KthNeighborInjector(k=0)


class TestShellRadius:
    def test_shell_membership(self, setup, rng):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=ShellRadiusInjector(r1=0.3, r2=0.9)
        )
        query = rng.normal(size=3)
        indices, dists = searcher.radius(query, 0.6)  # nominal r ignored
        assert np.all(dists >= 0.3)
        assert np.all(dists <= 0.9 + 1e-12)
        bf_indices, bf_dists = bruteforce.radius(points, query, 0.9)
        shell = set(bf_indices[bf_dists >= 0.3].tolist())
        assert set(indices.tolist()) == shell

    def test_degenerate_exact_shell(self, setup, rng):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=ShellRadiusInjector(r1=0.0, r2=0.7)
        )
        query = rng.normal(size=3)
        indices, _ = searcher.radius(query, 0.7)
        bf_indices, _ = bruteforce.radius(points, query, 0.7)
        assert set(indices.tolist()) == set(bf_indices.tolist())

    def test_nn_untouched(self, setup, rng):
        points = setup
        searcher = build_searcher(
            points, SearchConfig(), injector=ShellRadiusInjector(r1=0.3, r2=0.9)
        )
        query = rng.normal(size=3)
        idx, _ = searcher.nn(query)
        assert idx == bruteforce.nn(points, query)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShellRadiusInjector(r1=-0.1, r2=0.5)
        with pytest.raises(ValueError):
            ShellRadiusInjector(r1=0.5, r2=0.5)


class TestStatsStillCharged:
    def test_injected_searches_count_work(self, setup, rng):
        points = setup
        stats = SearchStats()
        searcher = build_searcher(
            points,
            SearchConfig(),
            stats=stats,
            injector=KthNeighborInjector(k=3),
        )
        searcher.nn(rng.normal(size=3))
        assert stats.nodes_visited > 0
        assert stats.queries == 1
