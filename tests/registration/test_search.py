"""Unit tests for the neighbor-search backends and wrapper."""

import numpy as np
import pytest

from repro.core import ApproximateSearch, TwoStageKDTree
from repro.kdtree import KDTree, SearchStats
from repro.profiling import StageProfiler
from repro.registration import SearchConfig, build_searcher


@pytest.fixture
def points(rng):
    return rng.normal(size=(150, 3))


class TestBackends:
    def test_canonical_backend(self, points):
        searcher = build_searcher(points, SearchConfig(backend="canonical"))
        assert isinstance(searcher.index, KDTree)

    def test_twostage_backend(self, points):
        searcher = build_searcher(points, SearchConfig(backend="twostage"))
        assert isinstance(searcher.index, TwoStageKDTree)

    def test_approximate_backend(self, points):
        searcher = build_searcher(points, SearchConfig(backend="approximate"))
        assert isinstance(searcher.index, ApproximateSearch)

    def test_bruteforce_backend(self, points):
        searcher = build_searcher(points, SearchConfig(backend="bruteforce"))
        idx, dist = searcher.nn(points[3] + 0.001)
        assert idx == 3

    def test_all_backends_agree_on_nn(self, points, rng):
        queries = rng.normal(size=(10, 3))
        answers = {}
        for backend in ("canonical", "twostage", "bruteforce"):
            searcher = build_searcher(points, SearchConfig(backend=backend))
            answers[backend] = [searcher.nn(q)[1] for q in queries]
        assert np.allclose(answers["canonical"], answers["bruteforce"])
        assert np.allclose(answers["twostage"], answers["bruteforce"])

    def test_all_backends_agree_on_radius(self, points, rng):
        query = rng.normal(size=3)
        sets = {}
        for backend in ("canonical", "twostage", "bruteforce"):
            searcher = build_searcher(points, SearchConfig(backend=backend))
            indices, _ = searcher.radius(query, 0.9)
            sets[backend] = set(indices.tolist())
        assert sets["canonical"] == sets["bruteforce"] == sets["twostage"]

    def test_knn_wrapper(self, points, rng):
        searcher = build_searcher(points, SearchConfig())
        indices, dists = searcher.knn(rng.normal(size=3), 5)
        assert len(indices) == 5
        assert np.all(np.diff(dists) >= 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(backend="gpu")
        with pytest.raises(ValueError):
            SearchConfig(leaf_size=0)


class TestInstrumentation:
    def test_stats_accumulate(self, points, rng):
        stats = SearchStats()
        searcher = build_searcher(points, SearchConfig(), stats=stats)
        searcher.nn(rng.normal(size=3))
        searcher.radius(rng.normal(size=3), 0.5)
        assert stats.queries == 2
        assert stats.nodes_visited > 0

    def test_profiler_charged(self, points, rng):
        profiler = StageProfiler()
        with profiler.stage("Normal Estimation"):
            searcher = build_searcher(points, SearchConfig(), profiler=profiler)
            searcher.nn(rng.normal(size=3))
        timing = profiler.stages["Normal Estimation"]
        assert timing.kdtree_construction > 0
        assert timing.kdtree_search > 0
        assert timing.total >= timing.kdtree_search

    def test_build_time_recorded(self, points):
        searcher = build_searcher(points, SearchConfig())
        assert searcher.build_time > 0

    def test_points_property(self, points):
        for backend in ("canonical", "twostage", "approximate", "bruteforce"):
            searcher = build_searcher(points, SearchConfig(backend=backend))
            assert np.array_equal(searcher.points, points)
