"""Invariants of the per-frame/pairwise pipeline split.

``Pipeline.preprocess`` must be a pure function of ``(frame, config)``:
side-effect-free on its input, reproducible, and with its search work
attributed to the right stage so a later ``match`` can account it to
each consuming pair exactly as the monolithic ``register`` did.
"""

import numpy as np
import pytest

from repro.kdtree import SearchStats
from repro.profiling import StageProfiler
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
)

PREPROCESS_STAGES = (
    "Normal Estimation",
    "Key-point Detection",
    "Descriptor Calculation",
)


def quick_pipeline(**overrides) -> Pipeline:
    config = PipelineConfig(
        keypoints=KeypointConfig(
            method="harris", params={"radius": 1.0}, min_keypoints=8
        ),
        icp=ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=8),
        voxel_downsample=1.0,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return Pipeline(config)


def snapshot(cloud):
    return (
        cloud.points.tobytes(),
        cloud.attribute_names,
        tuple(cloud.get_attribute(n).tobytes() for n in cloud.attribute_names),
    )


class TestPreprocessPurity:
    def test_input_cloud_unmodified(self, lidar_pair):
        source, _, _ = lidar_pair
        before = snapshot(source)
        quick_pipeline().preprocess(source)
        assert snapshot(source) == before
        # Normals are attached to the state's copy, never the input.
        assert not source.has_attribute("normals")

    def test_repeated_preprocess_identical(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = quick_pipeline()
        a = pipeline.preprocess(source)
        b = pipeline.preprocess(source)
        assert np.array_equal(a.cloud.points, b.cloud.points)
        assert np.array_equal(
            a.cloud.get_attribute("normals"), b.cloud.get_attribute("normals")
        )
        assert np.array_equal(a.keypoints, b.keypoints)
        assert np.array_equal(a.descriptors, b.descriptors)
        assert a.stats == b.stats

    def test_with_features_flag(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = quick_pipeline()
        bare = pipeline.preprocess(source, with_features=False)
        full = pipeline.preprocess(source, with_features=True)
        assert not bare.has_features
        assert bare.keypoints is None and bare.descriptors is None
        assert full.has_features
        assert len(full.keypoints) >= 8

    def test_skip_initial_estimation_defaults_featureless(self, lidar_pair):
        source, _, _ = lidar_pair
        state = quick_pipeline(skip_initial_estimation=True).preprocess(source)
        assert not state.has_features

    def test_empty_cloud_rejected(self):
        from repro.io import PointCloud

        with pytest.raises(ValueError):
            quick_pipeline().preprocess(PointCloud(np.empty((0, 3))))


class TestEnsureFeatures:
    def test_returns_new_state_without_mutating(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = quick_pipeline()
        bare = pipeline.preprocess(source, with_features=False)
        bare_stats_before = {k: SearchStats(**vars(v)) for k, v in bare.stats.items()}
        full = pipeline.ensure_features(bare)
        assert full is not bare
        assert full.has_features
        assert bare.keypoints is None
        assert bare.stats == bare_stats_before
        # The expensive artifacts are shared, not recomputed.
        assert full.index is bare.index
        assert full.cloud is bare.cloud

    def test_idempotent_on_featured_state(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = quick_pipeline()
        full = pipeline.preprocess(source, with_features=True)
        assert pipeline.ensure_features(full) is full

    def test_matches_eager_preprocess(self, lidar_pair):
        source, _, _ = lidar_pair
        pipeline = quick_pipeline()
        eager = pipeline.preprocess(source, with_features=True)
        lazy = pipeline.ensure_features(
            pipeline.preprocess(source, with_features=False)
        )
        assert np.array_equal(eager.keypoints, lazy.keypoints)
        assert np.array_equal(eager.descriptors, lazy.descriptors)
        assert eager.stats == lazy.stats


class TestStatsAttribution:
    def test_preprocess_charges_only_frame_stages(self, lidar_pair):
        source, _, _ = lidar_pair
        state = quick_pipeline().preprocess(source)
        assert set(state.stats) == set(PREPROCESS_STAGES)
        assert state.stats["Normal Estimation"].queries == len(state.cloud)
        assert state.stats["Key-point Detection"].queries > 0
        assert state.stats["Descriptor Calculation"].queries > 0

    def test_match_folds_both_frames_preprocess_work(self, lidar_pair):
        source, target, _ = lidar_pair
        pipeline = quick_pipeline()
        source_state = pipeline.preprocess(source)
        target_state = pipeline.preprocess(target)
        result = pipeline.match(source_state, target_state)
        for stage in PREPROCESS_STAGES:
            expected = SearchStats()
            expected.merge(source_state.stats[stage])
            expected.merge(target_state.stats[stage])
            assert result.stage_stats[stage] == expected
        assert result.stage_stats["RPCE"].queries > 0
        assert result.stage_stats["KPCE"].queries > 0

    def test_split_equals_monolithic_register(self, lidar_pair):
        source, target, _ = lidar_pair
        pipeline = quick_pipeline()
        split = pipeline.match(
            pipeline.preprocess(source), pipeline.preprocess(target)
        )
        monolithic = pipeline.register(source, target)
        assert split.stage_stats == monolithic.stage_stats
        assert np.array_equal(split.transformation, monolithic.transformation)
        assert split.icp.iterations == monolithic.icp.iterations

    def test_match_does_not_mutate_cached_states(self, lidar_pair):
        """Reusing a state across pairs must not double-charge stats."""
        source, target, _ = lidar_pair
        pipeline = quick_pipeline()
        source_state = pipeline.preprocess(source)
        target_state = pipeline.preprocess(target)
        frozen = {
            k: SearchStats(**vars(v)) for k, v in target_state.stats.items()
        }
        first = pipeline.match(source_state, target_state)
        second = pipeline.match(source_state, target_state)
        assert target_state.stats == frozen
        assert first.stage_stats == second.stage_stats

    def test_match_runs_no_per_frame_stages(self, lidar_pair):
        """After preprocessing, match must only touch pairwise stages."""
        source, target, _ = lidar_pair
        pipeline = quick_pipeline()
        source_state = pipeline.preprocess(source)
        target_state = pipeline.preprocess(target)
        profiler = StageProfiler()
        pipeline.match(source_state, target_state, profiler=profiler)
        for stage in PREPROCESS_STAGES:
            assert stage not in profiler.stages

    def test_seeded_match_excludes_feature_work(self, lidar_pair):
        """A seeded pair never ran keypoints/descriptors in the
        monolithic pipeline; the folded account must agree even when
        the cached states happen to carry features."""
        source, target, gt = lidar_pair
        pipeline = quick_pipeline()
        source_state = pipeline.preprocess(source, with_features=True)
        target_state = pipeline.preprocess(target, with_features=True)
        split = pipeline.match(source_state, target_state, initial=gt)
        monolithic = pipeline.register(source, target, initial=gt)
        assert split.stage_stats == monolithic.stage_stats
        assert split.stage_stats["Key-point Detection"] == SearchStats()


class TestProjectionRangeImage:
    def projection_pipeline(self) -> Pipeline:
        # No voxel downsample: projection RPCE needs the scan's
        # ring/azimuth channels at full resolution.
        return Pipeline(
            PipelineConfig(
                icp=ICPConfig(
                    rpce=RPCEConfig(method="projection", max_distance=2.0),
                    max_iterations=5,
                ),
                skip_initial_estimation=True,
            )
        )

    def test_preprocess_leaves_range_image_lazy(self, lidar_pair):
        source, _, _ = lidar_pair
        state = self.projection_pipeline().preprocess(source)
        assert state.range_image is None

    def test_split_matches_monolithic(self, lidar_pair):
        source, target, _ = lidar_pair
        pipeline = self.projection_pipeline()
        split = pipeline.match(
            pipeline.preprocess(source), pipeline.preprocess(target)
        )
        monolithic = pipeline.register(source, target)
        assert np.array_equal(split.transformation, monolithic.transformation)
        assert split.stage_stats == monolithic.stage_stats

    def test_prebuilt_range_image_honored(self, lidar_pair):
        from dataclasses import replace

        from repro.registration.keypoints.narf import build_range_image

        source, target, _ = lidar_pair
        pipeline = self.projection_pipeline()
        source_state = pipeline.preprocess(source)
        target_state = pipeline.preprocess(target)
        prebuilt = replace(
            target_state, range_image=build_range_image(target_state.cloud)
        )
        lazy = pipeline.match(source_state, target_state)
        eager = pipeline.match(source_state, prebuilt)
        assert np.array_equal(lazy.transformation, eager.transformation)
        assert lazy.stage_stats == eager.stage_stats


class TestFrameStateSearcher:
    @pytest.mark.parametrize("backend", ["twostage", "approximate"])
    def test_exact_view_strips_approximation(self, lidar_pair, backend):
        from repro.core.approx import ApproximateSearch

        source, _, _ = lidar_pair
        pipeline = quick_pipeline(search=SearchConfig(backend=backend))
        state = pipeline.preprocess(source, with_features=False)
        exact = state.searcher(SearchStats(), exact=True)
        assert not isinstance(exact.index, ApproximateSearch)
        if backend == "approximate":
            assert isinstance(state.index, ApproximateSearch)
            fresh = state.searcher(SearchStats(), fresh_approx=True)
            assert isinstance(fresh.index, ApproximateSearch)
            assert fresh.index is not state.index
