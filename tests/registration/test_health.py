"""Registration health: gates, observability analysis, degeneracy flags."""

import dataclasses

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import SceneSuite, make_sequence
from repro.registration import (
    HealthConfig,
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
    assess_registration,
    translation_observability,
)

BACKENDS = ("canonical", "twostage", "approximate", "bruteforce", "gridhash")


def health_pipeline(backend: str = "twostage") -> Pipeline:
    """Point-to-plane matcher (health needs normals for observability)."""
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
            ),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=6,
            ),
            search=SearchConfig(backend=backend),
        )
    )


@pytest.fixture(scope="module")
def good_result():
    """A genuine, well-aligned registration to threshold against."""
    sequence = make_sequence(n_frames=2, seed=7)
    source, target, relative = sequence.pair(0)
    return health_pipeline().register(source, target, initial=relative)


class TestVerdict:
    def test_good_pair_healthy_by_default(self, good_result):
        health = assess_registration(good_result)
        assert health.healthy
        assert health.reasons == ()
        assert not health.degenerate

    def test_signals_recorded(self, good_result):
        health = assess_registration(good_result)
        assert health.rmse == pytest.approx(good_result.icp.rmse)
        assert health.median_residual == pytest.approx(
            float(np.median(good_result.icp.matched_residuals))
        )
        # The median ignores the far-match tail, so it sits below the
        # RMS of the same residual vector.
        assert health.median_residual < health.rmse
        assert health.eigenvalue_ratio is not None
        assert health.condition_number is not None
        assert health.translation > 0.0

    def test_rmse_gate(self, good_result):
        health = assess_registration(
            good_result, HealthConfig(max_rmse=1e-9)
        )
        assert not health.healthy
        assert "rmse" in health.reasons

    def test_median_residual_gate(self, good_result):
        health = assess_registration(
            good_result, HealthConfig(max_median_residual=1e-9)
        )
        assert not health.healthy
        assert "median_residual" in health.reasons
        loose = assess_registration(
            good_result,
            HealthConfig(max_median_residual=good_result.icp.rmse),
        )
        assert "median_residual" not in loose.reasons

    def test_motion_bounds(self, good_result):
        health = assess_registration(
            good_result, HealthConfig(max_translation=1e-6)
        )
        assert "translation_bound" in health.reasons

    def test_prior_tolerances(self, good_result):
        # The solved motion is ~1 m; an identity prior violates a tight
        # translation tolerance.
        health = assess_registration(
            good_result,
            HealthConfig(prior_translation_tolerance=0.1),
            prior=np.eye(4),
        )
        assert "prior_translation" in health.reasons
        assert health.prior_translation_deviation == pytest.approx(
            health.translation, rel=1e-6
        )
        # The solved transform itself as prior: zero deviation, healthy.
        agree = assess_registration(
            good_result,
            HealthConfig(
                prior_translation_tolerance=0.1,
                prior_rotation_tolerance_deg=1.0,
            ),
            prior=good_result.transformation,
        )
        assert agree.healthy

    def test_disabled_gates_do_not_fire(self, good_result):
        config = HealthConfig(
            max_rmse=None,
            max_median_residual=None,
            min_inlier_ratio=None,
            max_translation=None,
            max_rotation_deg=None,
            min_eigenvalue_ratio=None,
        )
        assert assess_registration(good_result, config).healthy


class TestTranslationObservability:
    @staticmethod
    def hessian_from_normals(normals: np.ndarray) -> np.ndarray:
        hessian = np.zeros((6, 6))
        hessian[3:6, 3:6] = normals.T @ normals
        return hessian

    @staticmethod
    def corridor_normals(rng, n: int = 200) -> np.ndarray:
        """Normals of two walls (+-y) and a floor (+z): no x aperture."""
        walls = np.tile([0.0, 1.0, 0.0], (n, 1))
        walls[: n // 2, 1] = -1.0
        floor = np.tile([0.0, 0.0, 1.0], (n // 2, 1))
        return np.vstack([walls, floor])

    def test_none_hessian(self):
        assert translation_observability(None) == (None, None)

    def test_full_rank_aperture(self, rng):
        normals = rng.normal(size=(300, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        ratio, condition = translation_observability(
            self.hessian_from_normals(normals), normals=normals
        )
        assert ratio > 0.1
        assert condition < 10.0

    def test_corridor_rank_deficiency(self, rng):
        normals = self.corridor_normals(rng)
        ratio, condition = translation_observability(
            self.hessian_from_normals(normals)
        )
        assert ratio == pytest.approx(0.0, abs=1e-12)
        assert condition == np.inf

    def test_trimming_removes_junk_support(self, rng):
        # A few percent of junk normals (arbitrary orientation, the
        # signature of collinear single-ring neighborhoods) props the
        # null direction up to apparent observability; the trimmed
        # statistic must see through them.
        normals = self.corridor_normals(rng, n=200)
        junk = rng.normal(size=(9, 3))  # 3% of 300
        junk /= np.linalg.norm(junk, axis=1, keepdims=True)
        contaminated = np.vstack([normals, junk])
        hessian = self.hessian_from_normals(contaminated)
        untrimmed, _ = translation_observability(hessian)
        trimmed, _ = translation_observability(
            hessian, normals=contaminated
        )
        assert untrimmed > 1e-3  # junk fakes an aperture
        assert trimmed < 1e-6  # the trim collapses it
        assert trimmed < untrimmed / 100.0

    def test_trimming_keeps_genuine_aperture(self, rng):
        normals = rng.normal(size=(300, 3))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        hessian = self.hessian_from_normals(normals)
        untrimmed, _ = translation_observability(hessian)
        trimmed, _ = translation_observability(hessian, normals=normals)
        # Broad support survives a 5% trim: same order of magnitude.
        assert trimmed > untrimmed / 3.0


class TestCorridorDegeneracyAcrossBackends:
    """The corridor flags ``degenerate`` under every search backend.

    Degeneracy is a property of the scene geometry seen through the
    matched correspondence set; swapping the neighbor-search backend
    changes which correspondences are found, so each backend must be
    shown to surface the same near-null translation direction.  The
    gate here is the condition number: the approximate backend's
    deliberately-wrong neighbors add broad junk support that props the
    smallest eigenvalue slightly above the tight default ratio gate,
    but the translation block stays conditioned orders of magnitude
    worse than any observable scene under every backend (5e3-2e4 here
    vs ~1e2 for the urban pair).
    """

    CONFIG = HealthConfig(max_condition_number=1e3)

    @pytest.fixture(scope="class")
    def corridor_pair(self):
        suite = SceneSuite.adverse(n_frames=2)
        sequence = suite.sequence("corridor")
        return sequence.frames[1], sequence.frames[0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_flagged_degenerate(self, corridor_pair, backend):
        source, target = corridor_pair
        result = health_pipeline(backend).register(
            source, target, initial=np.eye(4)
        )
        health = assess_registration(result, self.CONFIG)
        assert health.degenerate
        assert "degenerate" in health.reasons
        assert health.eigenvalue_ratio < 1e-3
        assert health.condition_number > 1e3

    def test_exact_backends_flag_at_default_ratio(self, corridor_pair):
        source, target = corridor_pair
        result = health_pipeline("twostage").register(
            source, target, initial=np.eye(4)
        )
        health = assess_registration(result)
        assert health.degenerate
        assert health.eigenvalue_ratio < 1e-4

    def test_urban_not_degenerate_same_config(self):
        sequence = make_sequence(n_frames=2, seed=7)
        source, target, relative = sequence.pair(0)
        result = health_pipeline().register(source, target, initial=relative)
        health = assess_registration(result, self.CONFIG)
        assert not health.degenerate
        assert health.eigenvalue_ratio > 1e-3
        assert health.condition_number < 1e3
