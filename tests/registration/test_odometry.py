"""Unit tests for the sequence odometry driver."""

import numpy as np
import pytest

from repro.io import PointCloud
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    OdometryResult,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
    run_odometry,
)


@pytest.fixture(scope="module")
def quick_pipeline():
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
            ),
            icp=ICPConfig(
                rpce=RPCEConfig(max_distance=2.0),
                error_metric="point_to_plane",
                max_iterations=15,
            ),
            skip_initial_estimation=True,
        )
    )


class TestRunOdometry:
    def test_sequence_object_input(self, lidar_sequence, quick_pipeline):
        result = run_odometry(lidar_sequence, quick_pipeline)
        assert isinstance(result, OdometryResult)
        assert result.n_pairs == len(lidar_sequence) - 1
        assert len(result.trajectory) == len(lidar_sequence)
        assert result.errors is not None
        assert result.errors.translational < 1.0

    def test_trajectory_starts_at_identity(self, lidar_sequence, quick_pipeline):
        result = run_odometry(lidar_sequence, quick_pipeline, max_pairs=1)
        assert np.array_equal(result.trajectory[0], np.eye(4))

    def test_plain_frame_list_without_ground_truth(
        self, lidar_sequence, quick_pipeline
    ):
        result = run_odometry(
            list(lidar_sequence.frames[:2]), quick_pipeline
        )
        assert result.errors is None
        assert result.per_pair_errors == []
        assert result.n_pairs == 1

    def test_max_pairs_limits_work(self, lidar_sequence, quick_pipeline):
        result = run_odometry(lidar_sequence, quick_pipeline, max_pairs=1)
        assert result.n_pairs == 1

    def test_per_pair_errors_align(self, lidar_sequence, quick_pipeline):
        result = run_odometry(lidar_sequence, quick_pipeline, max_pairs=2)
        assert len(result.per_pair_errors) == 2
        for rot, trans in result.per_pair_errors:
            assert rot >= 0
            assert trans >= 0

    def test_seeding_uses_previous_motion(self, lidar_sequence, quick_pipeline):
        seeded = run_odometry(
            lidar_sequence, quick_pipeline, seed_with_previous=True
        )
        unseeded = run_odometry(
            lidar_sequence, quick_pipeline, seed_with_previous=False
        )
        # Both must complete; the seeded run should never be (much) worse.
        assert (
            seeded.errors.translational
            <= unseeded.errors.translational + 0.15
        )

    def test_profiler_merged_across_pairs(self, lidar_sequence, quick_pipeline):
        result = run_odometry(lidar_sequence, quick_pipeline, max_pairs=2)
        assert result.profiler.stages["RPCE"].calls >= 2

    def test_summary_readable(self, lidar_sequence, quick_pipeline):
        result = run_odometry(lidar_sequence, quick_pipeline, max_pairs=1)
        text = result.summary()
        assert "odometry over 1 pairs" in text
        assert "KITTI errors" in text

    def test_single_frame_rejected(self, lidar_sequence, quick_pipeline):
        with pytest.raises(ValueError):
            run_odometry([lidar_sequence.frames[0]], quick_pipeline)

    def test_short_ground_truth_rejected(self, lidar_sequence, quick_pipeline):
        with pytest.raises(ValueError):
            run_odometry(
                list(lidar_sequence.frames),
                quick_pipeline,
                ground_truth_poses=lidar_sequence.poses[:1],
            )
