"""CSR-native radius path: bit-parity with the legacy list path.

The PR 8 contract: every backend produces radius results as one flat
:class:`~repro.core.ragged.RaggedNeighborhoods`, and the legacy
``radius_batch`` lists are nothing but that CSR result sliced at the
delivery edge.  These tests pin the bit-identity of the two paths for
all five backends, the edge cases the flat layout must survive (empty
rows, duplicate queries, exact distance ties, zero queries), the
chunk-size invariance of the brute-force flat kernel, the
``csr_results`` stats accounting, and the injector / reuse-cache CSR
hooks.
"""

import numpy as np
import pytest

from repro.core.ragged import RaggedNeighborhoods
from repro.kdtree import SearchStats, bruteforce
from repro.registration import SearchConfig, build_searcher
from repro.registration.error_injection import ShellRadiusInjector
from repro.registration.search import RadiusReuseCache, build_index

BACKENDS = ("canonical", "twostage", "approximate", "bruteforce", "gridhash")


@pytest.fixture
def points(rng):
    return rng.normal(size=(180, 3))


def fresh(points, backend, **kwargs):
    """A searcher over a freshly built index.

    Parity comparisons always build two independent indices so the
    stateful approximate backend sees identical leader state on both
    sides.
    """
    return build_searcher(points, SearchConfig(backend=backend), **kwargs)


def assert_csr_matches_lists(result, indices, dists):
    assert isinstance(result, RaggedNeighborhoods)
    got_idx, got_dist = result.to_list_pair()
    assert len(got_idx) == len(indices)
    for got_i, got_d, exp_i, exp_d in zip(got_idx, got_dist, indices, dists):
        assert np.array_equal(got_i, exp_i)
        assert np.array_equal(got_d, exp_d)


def assert_well_formed(result):
    offsets = result.offsets
    assert offsets.dtype == np.int64
    assert offsets[0] == 0
    assert offsets[-1] == result.n_entries == len(result.indices)
    assert np.all(np.diff(offsets) >= 0)
    assert result.distances is not None
    assert len(result.distances) == result.n_entries


class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("sort", [False, True])
    def test_csr_equals_list_path(self, points, rng, backend, sort):
        queries = rng.normal(size=(40, 3))
        csr = fresh(points, backend).radius_batch_csr(queries, 0.8, sort=sort)
        exp_idx, exp_dist = fresh(points, backend).radius_batch(
            queries, 0.8, sort=sort
        )
        assert_well_formed(csr)
        assert_csr_matches_lists(csr, exp_idx, exp_dist)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("sort", [False, True])
    def test_csr_equals_scalar_loop(self, points, rng, backend, sort):
        queries = rng.normal(size=(15, 3))
        csr = fresh(points, backend).radius_batch_csr(queries, 0.7, sort=sort)
        scalar = fresh(points, backend)
        got_idx, got_dist = csr.to_list_pair()
        for row, query in enumerate(queries):
            exp_i, exp_d = scalar.radius(query, 0.7, sort=sort)
            assert np.array_equal(got_idx[row], exp_i)
            assert np.array_equal(got_dist[row], exp_d)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_rows_empty(self, points, rng, backend):
        queries = rng.normal(size=(8, 3)) + 100.0
        csr = fresh(points, backend).radius_batch_csr(queries, 1e-9)
        assert_well_formed(csr)
        assert csr.n_segments == 8
        assert csr.n_entries == 0
        assert np.array_equal(csr.counts, np.zeros(8, dtype=np.int64))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_queries(self, points, backend):
        csr = fresh(points, backend).radius_batch_csr(np.empty((0, 3)), 0.5)
        assert_well_formed(csr)
        assert csr.n_segments == 0
        assert csr.n_entries == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("sort", [False, True])
    def test_duplicate_queries_and_ties(self, backend, sort):
        # Integer grid: every query sits on a lattice point, so the
        # shell at distance 1.0 is a 6-way exact tie, and repeated
        # query rows must reproduce byte-identical segments.
        axes = np.arange(4, dtype=np.float64)
        grid = np.stack(np.meshgrid(axes, axes, axes), axis=-1).reshape(-1, 3)
        queries = grid[[21, 21, 42, 21, 42]]
        csr = fresh(grid, backend).radius_batch_csr(queries, 1.0, sort=sort)
        exp_idx, exp_dist = fresh(grid, backend).radius_batch(
            queries, 1.0, sort=sort
        )
        assert_well_formed(csr)
        assert_csr_matches_lists(csr, exp_idx, exp_dist)
        got_idx, got_dist = csr.to_list_pair()
        for dup, orig in ((1, 0), (3, 0), (4, 2)):
            assert np.array_equal(got_idx[dup], got_idx[orig])
            assert np.array_equal(got_dist[dup], got_dist[orig])


class TestBruteforceChunking:
    """The flat brute-force kernel is invariant to its chunk schedule."""

    @pytest.mark.parametrize("chunk", [1, 3, 7, 64])
    @pytest.mark.parametrize("sort", [False, True])
    def test_chunk_boundary_invariance(self, rng, monkeypatch, chunk, sort):
        points = rng.normal(size=(120, 3))
        queries = rng.normal(size=(50, 3))
        reference = bruteforce.radius_batch_csr(points, queries, 0.9, sort=sort)
        monkeypatch.setattr(
            bruteforce, "query_chunk", lambda n_points, n_queries: chunk
        )
        chunked = bruteforce.radius_batch_csr(points, queries, 0.9, sort=sort)
        assert np.array_equal(chunked.indices, reference.indices)
        assert np.array_equal(chunked.offsets, reference.offsets)
        assert np.array_equal(chunked.distances, reference.distances)


class TestStatsAccounting:
    def test_csr_entry_point_counts(self, points, rng):
        stats = SearchStats()
        searcher = fresh(points, "twostage", stats=stats)
        queries = rng.normal(size=(12, 3))
        searcher.radius_batch_csr(queries, 0.5)
        assert stats.csr_results == 12
        assert stats.queries == 12

    def test_legacy_wrapper_does_not_count(self, points, rng):
        stats = SearchStats()
        searcher = fresh(points, "twostage", stats=stats)
        searcher.radius_batch(rng.normal(size=(12, 3)), 0.5)
        assert stats.csr_results == 0
        assert stats.queries == 12

    def test_csr_injector_counts(self, points, rng):
        stats = SearchStats()
        searcher = fresh(
            points,
            "twostage",
            stats=stats,
            injector=ShellRadiusInjector(r1=0.2, r2=0.8),
        )
        searcher.radius_batch_csr(rng.normal(size=(9, 3)), 0.5)
        assert stats.csr_results == 9

    def test_list_only_injector_not_counted(self, points, rng):
        class ListOnlyInjector:
            def radius_batch(self, index, queries, r, stats, sort=False):
                return index.radius_batch(queries, r, stats, sort=sort)

        stats = SearchStats()
        searcher = fresh(points, "twostage", stats=stats, injector=ListOnlyInjector())
        result = searcher.radius_batch_csr(rng.normal(size=(9, 3)), 0.5)
        assert isinstance(result, RaggedNeighborhoods)
        assert stats.csr_results == 0


class TestInjectorParity:
    @pytest.mark.parametrize("sort", [False, True])
    def test_shell_csr_matches_scalar_shell(self, points, rng, sort):
        shell = ShellRadiusInjector(r1=0.3, r2=0.9)
        queries = rng.normal(size=(20, 3))
        searcher = fresh(points, "bruteforce", injector=shell)
        got_idx, got_dist = searcher.radius_batch_csr(
            queries, 0.5, sort=sort
        ).to_list_pair()
        reference = build_index(points, SearchConfig(backend="bruteforce"))[0]
        for row, query in enumerate(queries):
            exp_i, exp_d = reference.radius(query, 0.9, sort=sort)
            keep = exp_d >= 0.3
            assert np.array_equal(got_idx[row], exp_i[keep])
            assert np.array_equal(got_dist[row], exp_d[keep])


class TestReuseCacheCSR:
    @pytest.mark.parametrize("sort", [False, True])
    @pytest.mark.parametrize("r", [0.4, 1.0])
    def test_serve_csr_matches_serve(self, points, rng, sort, r):
        index, _ = build_index(points, SearchConfig(backend="twostage"))
        cache = RadiusReuseCache(index, max_radius=1.0)
        cache.fill(SearchStats())
        rows = rng.choice(len(points), size=60, replace=False).astype(np.int64)
        exp_idx, exp_dist = cache.serve(rows, r, sort=sort)
        csr = cache.serve_csr(rows, r, sort=sort)
        assert_well_formed(csr)
        assert_csr_matches_lists(csr, exp_idx, exp_dist)

    @pytest.mark.parametrize("sort", [False, True])
    def test_serve_csr_matches_fresh_search(self, points, rng, sort):
        index, _ = build_index(points, SearchConfig(backend="twostage"))
        cache = RadiusReuseCache(index, max_radius=1.0)
        cache.fill(SearchStats())
        rows = rng.choice(len(points), size=40, replace=False).astype(np.int64)
        csr = cache.serve_csr(rows, 0.6, sort=sort)
        direct = index.radius_batch_csr(points[rows], 0.6, sort=sort)
        assert np.array_equal(csr.indices, direct.indices)
        assert np.array_equal(csr.offsets, direct.offsets)
        assert np.array_equal(csr.distances, direct.distances)
