"""Acceptance tests for the streaming SLAM engine (ISSUE 4).

The headline scenario is the ``urban_loop`` suite sequence — two laps
around a circuit, so the second lap revisits every point of the first.
On it the mapper must: detect at least one verified loop closure, cut
absolute trajectory error to at most half the open-loop streaming
odometry's, preprocess every frame exactly once (loop verification
reuses the keyframes' cached ``FrameState`` artifacts), and — with loop
closure disabled — reproduce the open-loop trajectory bit for bit.

The full-circuit runs cost seconds each, so they are computed once per
module and shared across assertions.
"""

import numpy as np
import pytest

from repro.geometry import metrics, se3
from repro.io import SceneSuite, default_test_model
from repro.mapping import (
    StreamingMapper,
    urban_loop_mapper_config,
    urban_loop_pipeline,
)
from repro.registration import Pipeline, run_streaming_odometry

N_FRAMES = 48

# The shared reference configuration (repro.mapping.presets): the same
# pipeline and mapper the example, bench, and golden scenario run.
make_pipeline = urban_loop_pipeline
mapper_config = urban_loop_mapper_config


@pytest.fixture(scope="module")
def urban_loop():
    suite = SceneSuite.default(n_frames=N_FRAMES, model=default_test_model())
    return suite.sequence("urban_loop")


@pytest.fixture(scope="module")
def open_loop(urban_loop):
    return run_streaming_odometry(urban_loop, make_pipeline())


@pytest.fixture(scope="module")
def mapped(urban_loop):
    """One full mapping run, with pipeline preprocess calls counted."""
    calls = {"preprocess": 0}
    original = Pipeline.preprocess

    def counting(self, *args, **kwargs):
        calls["preprocess"] += 1
        return original(self, *args, **kwargs)

    Pipeline.preprocess = counting
    try:
        mapper = StreamingMapper(make_pipeline(), mapper_config())
        for frame in urban_loop.frames:
            mapper.push(frame)
    finally:
        Pipeline.preprocess = original
    return mapper, calls["preprocess"]


class TestLoopClosureAcceptance:
    def test_detects_loop_closures(self, mapped):
        mapper, _ = mapped
        assert mapper.stats.n_loop_closures >= 1
        assert len(mapper.loop_closures) == mapper.stats.n_loop_closures
        assert mapper.graph.n_loop_edges == mapper.stats.n_loop_closures

    def test_ate_halves_versus_open_loop(self, mapped, open_loop, urban_loop):
        mapper, _ = mapped
        ate_open = metrics.absolute_trajectory_error(
            open_loop.trajectory, urban_loop.poses
        )
        ate_mapped = metrics.absolute_trajectory_error(
            mapper.trajectory(), urban_loop.poses
        )
        assert ate_mapped <= 0.5 * ate_open

    def test_each_frame_preprocessed_exactly_once(self, mapped):
        mapper, n_preprocess = mapped
        assert n_preprocess == N_FRAMES
        assert mapper.stats.n_preprocess == N_FRAMES

    def test_loop_measurements_beat_drift(self, mapped, urban_loop):
        """Verified closures are more accurate than the drift they fix."""
        mapper, _ = mapped
        origin = se3.invert(urban_loop.poses[0])
        truth = {
            k.index: se3.compose(origin, urban_loop.poses[k.frame_index])
            for k in mapper.keyframes
        }
        for closure in mapper.loop_closures:
            want = se3.compose(
                se3.invert(truth[closure.target_index]),
                truth[closure.source_index],
            )
            rotation, translation = se3.transform_distance(
                want, closure.relative
            )
            assert translation < 1.5
            assert np.degrees(rotation) < 10.0

    def test_verified_closures_span_the_laps(self, mapped):
        """Closures connect second-lap keyframes back to the first lap."""
        mapper, _ = mapped
        gap = mapper.config.loop_closure.min_keyframe_gap
        for closure in mapper.loop_closures:
            assert closure.source_index - closure.target_index > gap


class TestOpenLoopEquivalence:
    def test_disabled_loop_closure_is_bit_identical(self, urban_loop, open_loop):
        mapper = StreamingMapper(
            make_pipeline(), mapper_config(enable_loop_closure=False)
        )
        for frame in urban_loop.frames:
            mapper.push(frame)
        trajectory = mapper.trajectory()
        assert len(trajectory) == len(open_loop.trajectory)
        for ours, reference in zip(trajectory, open_loop.trajectory):
            assert np.array_equal(ours, reference)
        assert mapper.stats.n_loop_closures == 0
        assert mapper.stats.n_optimizations == 0

    def test_relatives_match_streaming_odometry(self, mapped, open_loop):
        """Loop closure never touches the odometry front end."""
        mapper, _ = mapped
        for ours, reference in zip(
            mapper.odometry.relatives, open_loop.relatives
        ):
            assert np.array_equal(ours, reference)


class TestMapperMechanics:
    def test_push_protocol(self, urban_loop):
        mapper = StreamingMapper(
            make_pipeline(), mapper_config(enable_loop_closure=False)
        )
        assert mapper.push(urban_loop.frames[0]) is None
        assert mapper.push(urban_loop.frames[1]) is not None
        assert mapper.n_frames == 2
        assert len(mapper.trajectory()) == 2

    def test_keyframe_bookkeeping(self, mapped):
        mapper, _ = mapped
        assert mapper.stats.n_keyframes == len(mapper.keyframes)
        assert mapper.keyframes[0].frame_index == 0
        indices = [k.index for k in mapper.keyframes]
        assert indices == list(range(len(mapper.keyframes)))
        frames = [k.frame_index for k in mapper.keyframes]
        assert frames == sorted(frames)
        assert len(mapper.keyframe_poses()) == len(mapper.keyframes)

    def test_keyframes_reuse_front_end_states(self, mapped):
        """Keyframe clouds are the front end's, not re-derived copies."""
        mapper, _ = mapped
        for keyframe in mapper.keyframes:
            assert keyframe.state.cloud.has_normals
            assert keyframe.state.index is not None

    def test_global_map_accounts_every_keyframe_point(self, mapped):
        mapper, _ = mapped
        expected = sum(len(k.state.cloud) for k in mapper.keyframes)
        assert mapper.stats.n_map_points == expected
        cloud = mapper.global_map()
        assert len(cloud) == mapper.stats.n_map_voxels
        assert int(cloud.get_attribute("count").sum()) == expected

    def test_map_is_reanchored_after_optimization(self, mapped):
        """Map contributions sit at the optimized keyframe poses."""
        mapper, _ = mapped
        assert mapper.stats.n_optimizations >= 1
        assert mapper.stats.n_reanchored >= 1
        for keyframe, pose in zip(mapper.keyframes, mapper.keyframe_poses()):
            _, recorded_pose = mapper.map._sources[keyframe.index]
            rotation, translation = se3.transform_distance(recorded_pose, pose)
            assert translation < mapper.map.config.reanchor_translation_tol + 1e-9
        assert mapper.stats.loop_seconds > 0.0
        assert mapper.stats.optimize_seconds > 0.0
        # Re-anchoring is accounted separately from the solver.
        assert mapper.stats.reanchor_seconds > 0.0

    def test_trajectory_is_anchored_to_keyframes(self, mapped):
        """Non-keyframe poses ride their reference keyframe's correction."""
        mapper, _ = mapped
        trajectory = mapper.trajectory()
        keyframe_poses = mapper.keyframe_poses()
        for keyframe in mapper.keyframes:
            assert np.array_equal(
                trajectory[keyframe.frame_index],
                keyframe_poses[keyframe.index],
            )

    def test_stats_summary_mentions_the_essentials(self, mapped):
        mapper, _ = mapped
        text = mapper.stats.summary()
        assert "keyframes" in text
        assert "loop closure" in text


class TestTelemetry:
    """Span-tree and counter view of a traced mapping run.

    Uses a half-length circuit (one lap revisit still closes a loop)
    so the traced run stays cheap next to the module fixtures.
    """

    @pytest.fixture(scope="class")
    def traced(self):
        from repro.telemetry import Tracer

        suite = SceneSuite.default(
            n_frames=N_FRAMES // 2, model=default_test_model()
        )
        sequence = suite.sequence("urban_loop")
        tracer = Tracer()
        mapper = StreamingMapper(make_pipeline(), mapper_config(), tracer=tracer)
        for frame in sequence.frames:
            mapper.push(frame)
        return tracer, mapper

    def test_one_frame_span_per_push(self, traced):
        tracer, mapper = traced
        assert [root.name for root in tracer.roots] == (
            ["frame"] * mapper.n_frames
        )

    def test_hierarchy_reaches_every_subsystem(self, traced):
        tracer, mapper = traced
        names = {
            span.name for root in tracer.roots for span in root.walk()
        }
        structural = {
            "frame",
            "bootstrap",
            "pair",
            "preprocess",
            "match",
            "icp",
            "loop_closure",
            "verify",
            "pose_graph.optimize",
            "re_anchor",
        }
        assert structural <= names

    def test_optimize_spans_annotated_with_solver_mode(self, traced):
        tracer, mapper = traced
        optimizes = [
            span
            for root in tracer.roots
            for span in root.walk()
            if span.name == "pose_graph.optimize"
        ]
        assert len(optimizes) == mapper.stats.n_optimizations
        for span in optimizes:
            assert span.args["mode"] in (
                "batch",
                "incremental",
                "incremental+batch",
            )
            assert span.args["n_active_nodes"] <= span.args["n_nodes"]
            assert isinstance(span.args["converged"], bool)

    def test_counters_match_mapper_stats(self, traced):
        tracer, mapper = traced
        counters = tracer.counters
        assert counters.get("keyframes") == mapper.stats.n_keyframes
        assert counters.get("loop_closures") == mapper.stats.n_loop_closures
        assert counters.get("optimizations") == mapper.stats.n_optimizations
        assert counters.get("reanchored_voxels") == mapper.stats.n_reanchored
        assert mapper.stats.n_loop_closures >= 1  # the scenario closes

    def test_traced_run_matches_untraced(self, traced):
        tracer, mapper = traced
        suite = SceneSuite.default(
            n_frames=N_FRAMES // 2, model=default_test_model()
        )
        sequence = suite.sequence("urban_loop")
        untraced = StreamingMapper(make_pipeline(), mapper_config())
        for frame in sequence.frames:
            untraced.push(frame)
        assert all(
            np.array_equal(ours, reference)
            for ours, reference in zip(
                mapper.trajectory(), untraced.trajectory()
            )
        )
