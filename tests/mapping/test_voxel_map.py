"""Unit tests for the incremental voxel-hash global map."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.mapping import VoxelMap, VoxelMapConfig


def make_map(voxel_size: float = 0.5) -> VoxelMap:
    return VoxelMap(VoxelMapConfig(voxel_size=voxel_size))


class TestInsertion:
    def test_fusion_counts(self):
        vmap = make_map(1.0)
        points = np.array([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [1.5, 0.0, 0.0]])
        vmap.insert(0, points, se3.identity())
        assert vmap.n_voxels == 2
        assert vmap.n_points == 3
        assert vmap.count((0, 0, 0)) == 2
        assert vmap.count((1, 0, 0)) == 1
        assert vmap.count((9, 9, 9)) == 0

    def test_fused_point_is_the_centroid(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.2, 0.2, 0.2], [0.4, 0.4, 0.4]], se3.identity())
        np.testing.assert_allclose(vmap.fused_points(), [[0.3, 0.3, 0.3]])

    def test_insertion_applies_the_pose(self):
        vmap = make_map(1.0)
        pose = se3.make_transform(np.eye(3), [10.0, 0.0, 0.0])
        vmap.insert(0, [[0.5, 0.5, 0.5]], pose)
        assert vmap.count((10, 0, 0)) == 1

    def test_contributions_accumulate_across_sources(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.2, 0.2, 0.2]], se3.identity())
        vmap.insert(1, [[0.6, 0.6, 0.6]], se3.identity())
        assert vmap.n_voxels == 1
        assert vmap.count((0, 0, 0)) == 2

    def test_reinsert_replaces_contribution(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.5, 0.5, 0.5]], se3.identity())
        vmap.insert(0, [[5.5, 0.5, 0.5]], se3.identity())
        assert vmap.n_points == 1
        assert vmap.count((0, 0, 0)) == 0
        assert vmap.count((5, 0, 0)) == 1

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            make_map().insert(0, np.zeros((3, 2)), se3.identity())

    def test_to_cloud_carries_counts(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [3.5, 0.0, 0.0]],
                    se3.identity())
        cloud = vmap.to_cloud()
        assert len(cloud) == 2
        assert sorted(cloud.get_attribute("count").tolist()) == [1, 2]


class TestReAnchoring:
    def test_moved_source_is_rebinned(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.5, 0.5, 0.5]], se3.identity())
        moved = vmap.re_anchor({0: se3.make_transform(np.eye(3), [3.0, 0, 0])})
        assert moved == 1
        assert vmap.count((0, 0, 0)) == 0
        assert vmap.count((3, 0, 0)) == 1

    def test_unmoved_source_is_skipped(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.5, 0.5, 0.5]], se3.identity())
        assert vmap.re_anchor({0: se3.identity()}) == 0

    def test_unknown_source_is_ignored(self):
        vmap = make_map(1.0)
        vmap.insert(0, [[0.5, 0.5, 0.5]], se3.identity())
        assert vmap.re_anchor({7: se3.identity()}) == 0

    def test_other_contributions_survive(self, rng):
        vmap = make_map(0.5)
        static = rng.uniform(-2, 2, size=(200, 3))
        vmap.insert(0, static, se3.identity())
        vmap.insert(1, rng.uniform(-2, 2, size=(100, 3)),
                    se3.make_transform(np.eye(3), [20.0, 0, 0]))
        before_total = vmap.n_points
        vmap.re_anchor({1: se3.make_transform(np.eye(3), [40.0, 0, 0])})
        assert vmap.n_points == before_total
        # Static contribution's voxels are untouched.
        keys = vmap.keys(static)
        assert all(vmap.count(tuple(key)) > 0 for key in keys)

    def test_mismatched_removal_raises(self):
        """Removing mass a source never contributed is an accounting
        error and must raise, not silently delete voxels (the old
        aggregate representation swallowed negative counts)."""
        vmap = make_map(1.0)
        vmap.insert(0, [[0.5, 0.5, 0.5]], se3.identity())
        vmap.insert(1, [[0.5, 0.5, 0.5]], se3.identity())
        # Corrupt the bookkeeping the way a mismatched removal would:
        # source 1's recorded points no longer match what it inserted.
        points, pose = vmap._sources[1]
        vmap._sources[1] = (np.array([[9.5, 9.5, 9.5]]), pose)
        with pytest.raises(KeyError):
            vmap.re_anchor({1: se3.make_transform(np.eye(3), [3.0, 0, 0])})

    def test_repeated_reanchor_cycles_do_not_drift(self, rng):
        """Many subtract/re-add cycles leave surviving sums exact.

        A keyframe sharing voxels with a static keyframe is re-anchored
        back and forth many times; per-source contribution storage means
        the static keyframe's sums are bit-identical afterwards and the
        final map matches a from-scratch rebuild."""
        points_static = rng.uniform(-2, 2, size=(300, 3))
        points_moving = rng.uniform(-2, 2, size=(300, 3))
        vmap = make_map(0.5)
        vmap.insert(0, points_static, se3.identity())
        vmap.insert(1, points_moving, se3.identity())
        final_pose = se3.identity()
        for cycle in range(50):
            final_pose = se3.make_transform(
                se3.rot_z(0.01 * ((cycle % 7) + 1)),
                [0.1 * (cycle % 5), -0.1 * (cycle % 3), 0.0],
            )
            assert vmap.re_anchor({1: final_pose}) == 1
        fresh = make_map(0.5)
        fresh.insert(0, points_static, se3.identity())
        fresh.insert(1, points_moving, final_pose)
        assert vmap.n_voxels == fresh.n_voxels
        assert vmap.n_points == fresh.n_points
        ours, theirs = vmap.to_cloud(), fresh.to_cloud()
        order_a = np.lexsort(ours.points.T)
        order_b = np.lexsort(theirs.points.T)
        np.testing.assert_allclose(
            ours.points[order_a], theirs.points[order_b], atol=1e-12
        )
        np.testing.assert_array_equal(
            ours.get_attribute("count")[order_a],
            theirs.get_attribute("count")[order_b],
        )

    def test_reanchor_matches_fresh_insertion(self, rng):
        """Re-anchoring equals building the map at the new pose."""
        points = rng.uniform(-3, 3, size=(300, 3))
        new_pose = se3.make_transform(se3.rot_z(0.4), [2.0, -1.0, 0.5])
        incremental = make_map(0.5)
        incremental.insert(0, points, se3.identity())
        incremental.re_anchor({0: new_pose})
        fresh = make_map(0.5)
        fresh.insert(0, points, new_pose)
        assert incremental.n_voxels == fresh.n_voxels
        a = incremental.to_cloud()
        b = fresh.to_cloud()
        order_a = np.lexsort(a.points.T)
        order_b = np.lexsort(b.points.T)
        np.testing.assert_allclose(
            a.points[order_a], b.points[order_b], atol=1e-9
        )


class TestQueries:
    def test_radius_returns_sorted_hits_within_r(self, rng):
        vmap = make_map(0.5)
        points = rng.uniform(-5, 5, size=(1000, 3))
        vmap.insert(0, points, se3.identity())
        hits, dists = vmap.radius([0.0, 0.0, 0.0], 2.0)
        assert np.all(dists <= 2.0)
        assert np.all(np.diff(dists) >= 0)
        # Cross-check against a brute-force scan of the fused points.
        fused = vmap.fused_points()
        brute = np.linalg.norm(fused, axis=1)
        assert len(hits) == int(np.sum(brute <= 2.0))

    def test_radius_empty_result(self):
        vmap = make_map(0.5)
        vmap.insert(0, [[10.0, 10.0, 10.0]], se3.identity())
        hits, dists = vmap.radius([0.0, 0.0, 0.0], 1.0)
        assert len(hits) == 0 and len(dists) == 0

    def test_nearest_matches_brute_force(self, rng):
        vmap = make_map(0.5)
        vmap.insert(0, rng.uniform(-5, 5, size=(500, 3)), se3.identity())
        fused = vmap.fused_points()
        for query in ([0.0, 0.0, 0.0], [4.9, -4.9, 0.0], [50.0, 0.0, 0.0]):
            point, dist = vmap.nearest(query)
            brute = np.linalg.norm(fused - np.asarray(query), axis=1)
            assert np.isclose(dist, brute.min())

    def test_nearest_on_empty_map_raises(self):
        with pytest.raises(ValueError):
            make_map().nearest([0.0, 0.0, 0.0])

    def test_negative_radius_rejected(self):
        vmap = make_map()
        vmap.insert(0, [[0.0, 0.0, 0.0]], se3.identity())
        with pytest.raises(ValueError):
            vmap.radius([0.0, 0.0, 0.0], -1.0)


class TestConfig:
    def test_bad_voxel_size_rejected(self):
        with pytest.raises(ValueError):
            VoxelMapConfig(voxel_size=0.0)
