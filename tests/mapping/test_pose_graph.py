"""Unit tests for SE(3) pose-graph optimization."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.mapping import PoseGraph, PoseGraphConfig


def circle_truth(n: int, radius: float = 5.0) -> list[np.ndarray]:
    return [
        se3.make_transform(
            se3.rot_z(2 * np.pi * i / n),
            [radius * np.cos(2 * np.pi * i / n), radius * np.sin(2 * np.pi * i / n), 0],
        )
        for i in range(n)
    ]


def noisy_odometry_graph(
    truth: list[np.ndarray], rng: np.random.Generator, scale: float = 0.01
) -> PoseGraph:
    """Chain noisy odometry edges along ``truth``; initial nodes drift."""
    graph = PoseGraph()
    pose = truth[0]
    graph.add_node(pose)
    for i in range(1, len(truth)):
        measurement = se3.compose(
            se3.compose(se3.invert(truth[i - 1]), truth[i]),
            se3.exp(rng.normal(scale=scale, size=6)),
        )
        pose = se3.compose(pose, measurement)
        graph.add_node(pose)
        graph.add_edge(i - 1, i, measurement)
    return graph


def node_rmse(graph: PoseGraph, truth: list[np.ndarray]) -> float:
    return float(
        np.sqrt(
            np.mean(
                [
                    np.sum(
                        (
                            se3.translation_part(node) - se3.translation_part(want)
                        )
                        ** 2
                    )
                    for node, want in zip(graph.nodes, truth)
                ]
            )
        )
    )


class TestConstruction:
    def test_add_node_returns_dense_ids(self):
        graph = PoseGraph()
        assert graph.add_node(se3.identity()) == 0
        assert graph.add_node(se3.identity()) == 1
        assert len(graph) == 2

    def test_bad_pose_shape_rejected(self):
        with pytest.raises(ValueError):
            PoseGraph().add_node(np.eye(3))

    def test_edge_validation(self):
        graph = PoseGraph()
        graph.add_node(se3.identity())
        graph.add_node(se3.identity())
        with pytest.raises(ValueError):
            graph.add_edge(0, 2, se3.identity())
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, se3.identity())
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, se3.identity(), weight=0.0)

    def test_loop_edge_counter(self):
        graph = PoseGraph()
        for _ in range(3):
            graph.add_node(se3.identity())
        graph.add_edge(0, 1, se3.identity())
        graph.add_edge(1, 2, se3.identity(), kind="loop")
        assert graph.n_loop_edges == 1


class TestOptimize:
    def test_consistent_chain_has_zero_error(self, rng):
        """Odometry-only graphs are exactly satisfiable: nothing moves."""
        truth = circle_truth(8)
        graph = noisy_odometry_graph(truth, rng, scale=0.05)
        assert graph.error() < 1e-16
        before = [node.copy() for node in graph.nodes]
        result = graph.optimize()
        assert result.final_error < 1e-12
        for node, want in zip(graph.nodes, before):
            np.testing.assert_allclose(node, want, atol=1e-6)

    def test_loop_edge_corrects_drift(self, rng):
        """An exact loop edge pulls a noisy circle back toward truth."""
        truth = circle_truth(12)
        graph = noisy_odometry_graph(truth, rng, scale=0.02)
        graph.add_edge(
            11, 0, se3.compose(se3.invert(truth[11]), truth[0]), kind="loop"
        )
        before = node_rmse(graph, truth)
        result = graph.optimize()
        after = node_rmse(graph, truth)
        assert result.final_error < result.initial_error
        assert after < 0.6 * before
        for node in graph.nodes:
            assert se3.is_valid_transform(node)

    def test_gauge_node_stays_fixed(self, rng):
        truth = circle_truth(6)
        graph = noisy_odometry_graph(truth, rng, scale=0.05)
        graph.add_edge(5, 0, se3.compose(se3.invert(truth[5]), truth[0]))
        anchor = graph.nodes[0].copy()
        graph.optimize()
        assert np.array_equal(graph.nodes[0], anchor)

    def test_custom_fixed_set(self, rng):
        truth = circle_truth(6)
        graph = noisy_odometry_graph(truth, rng, scale=0.05)
        graph.add_edge(5, 0, se3.compose(se3.invert(truth[5]), truth[0]))
        anchored = {0: graph.nodes[0].copy(), 3: graph.nodes[3].copy()}
        graph.optimize(fixed={0, 3})
        for index, want in anchored.items():
            assert np.array_equal(graph.nodes[index], want)

    def test_empty_graph_is_a_noop(self):
        graph = PoseGraph()
        graph.add_node(se3.identity())
        result = graph.optimize()
        assert result.iterations == 0
        assert result.converged

    def test_deterministic(self, rng):
        truth = circle_truth(10)
        seeds = [np.random.default_rng(3), np.random.default_rng(3)]
        results = []
        for seed_rng in seeds:
            graph = noisy_odometry_graph(truth, seed_rng, scale=0.02)
            graph.add_edge(9, 0, se3.compose(se3.invert(truth[9]), truth[0]))
            graph.optimize(PoseGraphConfig())
            results.append([node.copy() for node in graph.nodes])
        for a, b in zip(*results):
            assert np.array_equal(a, b)

    def test_weights_bias_the_solution(self, rng):
        """A heavier loop edge leaves a smaller loop residual."""
        truth = circle_truth(10)
        residuals = []
        for weight in (1.0, 100.0):
            seed_rng = np.random.default_rng(5)
            graph = noisy_odometry_graph(truth, seed_rng, scale=0.05)
            loop = se3.compose(se3.invert(truth[9]), truth[0])
            graph.add_edge(9, 0, loop, weight=weight, kind="loop")
            graph.optimize()
            gap = se3.compose(
                se3.invert(loop),
                se3.compose(se3.invert(graph.nodes[9]), graph.nodes[0]),
            )
            residuals.append(float(np.linalg.norm(se3.log(gap))))
        assert residuals[1] < residuals[0]
