"""Unit tests for SE(3) pose-graph optimization."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.mapping import PoseGraph, PoseGraphConfig
from repro.mapping.pose_graph import linearize_edge


def circle_truth(n: int, radius: float = 5.0) -> list[np.ndarray]:
    return [
        se3.make_transform(
            se3.rot_z(2 * np.pi * i / n),
            [radius * np.cos(2 * np.pi * i / n), radius * np.sin(2 * np.pi * i / n), 0],
        )
        for i in range(n)
    ]


def noisy_odometry_graph(
    truth: list[np.ndarray], rng: np.random.Generator, scale: float = 0.01
) -> PoseGraph:
    """Chain noisy odometry edges along ``truth``; initial nodes drift."""
    graph = PoseGraph()
    pose = truth[0]
    graph.add_node(pose)
    for i in range(1, len(truth)):
        measurement = se3.compose(
            se3.compose(se3.invert(truth[i - 1]), truth[i]),
            se3.exp(rng.normal(scale=scale, size=6)),
        )
        pose = se3.compose(pose, measurement)
        graph.add_node(pose)
        graph.add_edge(i - 1, i, measurement)
    return graph


def node_rmse(graph: PoseGraph, truth: list[np.ndarray]) -> float:
    return float(
        np.sqrt(
            np.mean(
                [
                    np.sum(
                        (
                            se3.translation_part(node) - se3.translation_part(want)
                        )
                        ** 2
                    )
                    for node, want in zip(graph.nodes, truth)
                ]
            )
        )
    )


def random_transform(
    rng: np.random.Generator, rotation: float = 3.0, translation: float = 5.0
) -> np.ndarray:
    axis = rng.normal(size=3)
    axis /= np.linalg.norm(axis)
    angle = rng.uniform(-rotation, rotation)
    return se3.exp(
        np.concatenate([rng.uniform(-translation, translation, 3), axis * angle])
    )


def ill_conditioned_graph(seed: int) -> PoseGraph:
    """A small random graph with large rotations and wildly disparate
    edge weights — the regime where undamped Gauss-Newton steps
    overshoot and must be rejected."""
    rng = np.random.default_rng(seed)
    graph = PoseGraph()
    n = int(rng.integers(3, 7))
    for _ in range(n):
        graph.add_node(random_transform(rng))
    for i in range(n - 1):
        graph.add_edge(
            i, i + 1, random_transform(rng), weight=10.0 ** rng.uniform(0, 8)
        )
    for _ in range(int(rng.integers(1, 4))):
        i, j = rng.choice(n, 2, replace=False)
        graph.add_edge(
            int(i), int(j), random_transform(rng), weight=10.0 ** rng.uniform(0, 8)
        )
    return graph


def numeric_edge_jacobians(
    measurement: np.ndarray,
    pose_i: np.ndarray,
    pose_j: np.ndarray,
    h: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference Jacobians of the edge residual wrt right
    perturbations of either endpoint — the seed implementation's
    numeric differentiation, kept as the parity reference."""

    def residual(p_i, p_j):
        return se3.log(
            se3.compose(se3.invert(measurement), se3.invert(p_i), p_j)
        )

    jac_i = np.zeros((6, 6))
    jac_j = np.zeros((6, 6))
    for k in range(6):
        delta = np.zeros(6)
        delta[k] = h
        plus, minus = se3.exp(delta), se3.exp(-delta)
        jac_i[:, k] = (
            residual(se3.compose(pose_i, plus), pose_j)
            - residual(se3.compose(pose_i, minus), pose_j)
        ) / (2 * h)
        jac_j[:, k] = (
            residual(pose_i, se3.compose(pose_j, plus))
            - residual(pose_i, se3.compose(pose_j, minus))
        ) / (2 * h)
    return jac_i, jac_j


class TestLinearizeEdge:
    """Analytic Jacobians must match central differences to 1e-6."""

    def assert_parity(self, measurement, pose_i, pose_j):
        residual, jac_i, jac_j = linearize_edge(measurement, pose_i, pose_j)
        want_i, want_j = numeric_edge_jacobians(measurement, pose_i, pose_j)
        np.testing.assert_allclose(jac_i, want_i, atol=1e-6)
        np.testing.assert_allclose(jac_j, want_j, atol=1e-6)
        want_r = se3.log(
            se3.compose(se3.invert(measurement), se3.invert(pose_i), pose_j)
        )
        np.testing.assert_allclose(residual, want_r)

    def test_parity_near_identity_residuals(self, rng):
        """Small residuals: the common case during optimization."""
        for _ in range(10):
            pose_i = random_transform(rng)
            pose_j = random_transform(rng)
            noise = se3.exp(rng.normal(scale=1e-3, size=6))
            measurement = se3.compose(
                se3.invert(pose_i), pose_j, noise
            )
            self.assert_parity(measurement, pose_i, pose_j)

    def test_parity_large_residuals(self, rng):
        """Residual rotations up to ~2.9 rad (unoptimized loop edges)."""
        for _ in range(10):
            self.assert_parity(
                random_transform(rng, rotation=2.9),
                random_transform(rng, rotation=2.9),
                random_transform(rng, rotation=2.9),
            )

    def test_parity_near_pi_residual(self):
        """The hardest regime: residual rotation a hair below pi, where
        the SE(3) left-Jacobian inverse is most nonlinear."""
        pose_i = se3.identity()
        for angle in (np.pi - 1e-3, -(np.pi - 1e-3)):
            pose_j = se3.make_transform(se3.rot_z(angle), [1.0, -2.0, 0.5])
            self.assert_parity(se3.identity(), pose_i, pose_j)

    def test_exact_zero_residual(self):
        """A satisfied edge linearizes to r=0, J_j=I, J_i=-Ad."""
        pose_i = se3.make_transform(se3.rot_z(0.7), [1.0, 2.0, 3.0])
        pose_j = se3.make_transform(se3.rot_z(-0.4), [-1.0, 0.0, 2.0])
        measurement = se3.compose(se3.invert(pose_i), pose_j)
        residual, jac_i, jac_j = linearize_edge(measurement, pose_i, pose_j)
        np.testing.assert_allclose(residual, np.zeros(6), atol=1e-12)
        np.testing.assert_allclose(jac_j, np.eye(6), atol=1e-12)
        np.testing.assert_allclose(
            jac_i,
            -se3.adjoint(se3.compose(se3.invert(pose_j), pose_i)),
            atol=1e-12,
        )


class TestConstruction:
    def test_add_node_returns_dense_ids(self):
        graph = PoseGraph()
        assert graph.add_node(se3.identity()) == 0
        assert graph.add_node(se3.identity()) == 1
        assert len(graph) == 2

    def test_bad_pose_shape_rejected(self):
        with pytest.raises(ValueError):
            PoseGraph().add_node(np.eye(3))

    def test_edge_validation(self):
        graph = PoseGraph()
        graph.add_node(se3.identity())
        graph.add_node(se3.identity())
        with pytest.raises(ValueError):
            graph.add_edge(0, 2, se3.identity())
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, se3.identity())
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, se3.identity(), weight=0.0)

    def test_loop_edge_counter(self):
        graph = PoseGraph()
        for _ in range(3):
            graph.add_node(se3.identity())
        graph.add_edge(0, 1, se3.identity())
        graph.add_edge(1, 2, se3.identity(), kind="loop")
        assert graph.n_loop_edges == 1


class TestOptimize:
    def test_consistent_chain_has_zero_error(self, rng):
        """Odometry-only graphs are exactly satisfiable: nothing moves."""
        truth = circle_truth(8)
        graph = noisy_odometry_graph(truth, rng, scale=0.05)
        assert graph.error() < 1e-16
        before = [node.copy() for node in graph.nodes]
        result = graph.optimize()
        assert result.final_error < 1e-12
        for node, want in zip(graph.nodes, before):
            np.testing.assert_allclose(node, want, atol=1e-6)

    def test_loop_edge_corrects_drift(self, rng):
        """An exact loop edge pulls a noisy circle back toward truth."""
        truth = circle_truth(12)
        graph = noisy_odometry_graph(truth, rng, scale=0.02)
        graph.add_edge(
            11, 0, se3.compose(se3.invert(truth[11]), truth[0]), kind="loop"
        )
        before = node_rmse(graph, truth)
        result = graph.optimize()
        after = node_rmse(graph, truth)
        assert result.final_error < result.initial_error
        assert after < 0.6 * before
        for node in graph.nodes:
            assert se3.is_valid_transform(node)

    def test_gauge_node_stays_fixed(self, rng):
        truth = circle_truth(6)
        graph = noisy_odometry_graph(truth, rng, scale=0.05)
        graph.add_edge(5, 0, se3.compose(se3.invert(truth[5]), truth[0]))
        anchor = graph.nodes[0].copy()
        graph.optimize()
        assert np.array_equal(graph.nodes[0], anchor)

    def test_custom_fixed_set(self, rng):
        truth = circle_truth(6)
        graph = noisy_odometry_graph(truth, rng, scale=0.05)
        graph.add_edge(5, 0, se3.compose(se3.invert(truth[5]), truth[0]))
        anchored = {0: graph.nodes[0].copy(), 3: graph.nodes[3].copy()}
        graph.optimize(fixed={0, 3})
        for index, want in anchored.items():
            assert np.array_equal(graph.nodes[index], want)

    def test_empty_graph_is_a_noop(self):
        graph = PoseGraph()
        graph.add_node(se3.identity())
        result = graph.optimize()
        assert result.iterations == 0
        assert result.converged

    def test_deterministic(self, rng):
        truth = circle_truth(10)
        seeds = [np.random.default_rng(3), np.random.default_rng(3)]
        results = []
        for seed_rng in seeds:
            graph = noisy_odometry_graph(truth, seed_rng, scale=0.02)
            graph.add_edge(9, 0, se3.compose(se3.invert(truth[9]), truth[0]))
            graph.optimize(PoseGraphConfig())
            results.append([node.copy() for node in graph.nodes])
        for a, b in zip(*results):
            assert np.array_equal(a, b)

    def test_weights_bias_the_solution(self, rng):
        """A heavier loop edge leaves a smaller loop residual."""
        truth = circle_truth(10)
        residuals = []
        for weight in (1.0, 100.0):
            seed_rng = np.random.default_rng(5)
            graph = noisy_odometry_graph(truth, seed_rng, scale=0.05)
            loop = se3.compose(se3.invert(truth[9]), truth[0])
            graph.add_edge(9, 0, loop, weight=weight, kind="loop")
            graph.optimize()
            gap = se3.compose(
                se3.invert(loop),
                se3.compose(se3.invert(graph.nodes[9]), graph.nodes[0]),
            )
            residuals.append(float(np.linalg.norm(se3.log(gap))))
        assert residuals[1] < residuals[0]


class TestStepRejection:
    """Error-increasing Gauss-Newton steps are rejected, not kept."""

    def test_rejection_path_is_exercised_and_error_never_increases(
        self, monkeypatch
    ):
        """On a graph whose GN steps overshoot, the solver retries with
        heavier damping (visible as extra linear solves) and still ends
        at-or-below the initial error — the regression the seed solver
        failed: it applied the bad step and reported it converged."""
        import repro.mapping.pose_graph as pose_graph_module

        solves = []
        real_splu = pose_graph_module.splu

        def counting_splu(*args, **kwargs):
            solves.append(1)
            return real_splu(*args, **kwargs)

        monkeypatch.setattr(pose_graph_module, "splu", counting_splu)
        graph = ill_conditioned_graph(seed=2)
        result = graph.optimize()
        assert len(solves) > result.iterations  # at least one retry
        assert result.final_error <= result.initial_error
        np.testing.assert_allclose(graph.error(), result.final_error)

    @pytest.mark.parametrize("seed", [3, 4, 9, 13, 22])
    def test_final_error_never_exceeds_initial(self, seed):
        graph = ill_conditioned_graph(seed)
        result = graph.optimize()
        assert result.final_error <= result.initial_error
        if result.converged:
            assert result.final_error <= result.initial_error

    def test_rejected_steps_leave_poses_untouched(self):
        """With zero iterations allowed by damping exhaustion the nodes
        must equal the last accepted state, never a reverted trial."""
        graph = ill_conditioned_graph(seed=2)
        result = graph.optimize()
        for node in graph.nodes:
            assert se3.is_valid_transform(node)
        np.testing.assert_allclose(graph.error(), result.final_error)


class TestResultContract:
    def test_poses_are_copies_not_aliases(self, rng):
        """Mutating the returned poses must not corrupt the graph (the
        seed returned live references to the node arrays)."""
        truth = circle_truth(6)
        graph = noisy_odometry_graph(truth, rng, scale=0.02)
        graph.add_edge(5, 0, se3.compose(se3.invert(truth[5]), truth[0]))
        result = graph.optimize()
        before = [node.copy() for node in graph.nodes]
        for pose in result.poses:
            pose[:] = np.nan
        for node, want in zip(graph.nodes, before):
            np.testing.assert_array_equal(node, want)
        assert np.isfinite(graph.error())

    def test_noop_result_poses_are_copies(self):
        graph = PoseGraph()
        graph.add_node(se3.identity())
        result = graph.optimize()
        result.poses[0][:] = np.nan
        np.testing.assert_array_equal(graph.nodes[0], se3.identity())


def multi_lap_schedule(
    laps: int, per_lap: int = 12, scale: float = 0.02, seed: int = 7
):
    """A noisy multi-lap circle with one loop closure per revisit.

    Returns ``(odometry measurements, loop edges by arrival node)`` —
    a streaming schedule: node ``i``'s odometry edge arrives when ``i``
    does, and ``loops[i]`` lists the ``(i - per_lap, i, measurement)``
    closures discovered at that moment.
    """
    rng = np.random.default_rng(seed)
    one_lap = circle_truth(per_lap)
    truth = [one_lap[i % per_lap] for i in range(laps * per_lap)]
    measurements = [
        se3.compose(
            se3.compose(se3.invert(truth[i - 1]), truth[i]),
            se3.exp(rng.normal(scale=scale, size=6)),
        )
        for i in range(1, len(truth))
    ]
    loops = {
        i: (i - per_lap, i, se3.compose(se3.invert(truth[i - per_lap]), truth[i]))
        for i in range(per_lap, len(truth))
    }
    return measurements, loops


def replay_schedule(measurements, loops, incremental: bool):
    """Stream the schedule into a fresh graph, optimizing per closure."""
    graph = PoseGraph()
    graph.add_node(se3.identity())
    n_seen_edges = 0
    modes = []
    for i in range(1, len(measurements) + 1):
        graph.add_node(se3.compose(graph.nodes[i - 1], measurements[i - 1]))
        graph.add_edge(i - 1, i, measurements[i - 1])
        if i in loops:
            a, b, relative = loops[i]
            graph.add_edge(a, b, relative, kind="loop")
            if incremental:
                new = list(range(n_seen_edges, len(graph.edges)))
                result = graph.optimize(new_edges=new)
            else:
                result = graph.optimize()
            modes.append(result)
            n_seen_edges = len(graph.edges)
    return graph, modes


class TestIncremental:
    def test_incremental_matches_batch_on_multi_lap_schedule(self):
        """Streaming incremental optimization lands on the same optimum
        as always-batch, within a fraction of the noise scale."""
        measurements, loops = multi_lap_schedule(laps=3)
        batch_graph, _ = replay_schedule(measurements, loops, incremental=False)
        inc_graph, results = replay_schedule(measurements, loops, incremental=True)
        assert any(r.mode == "incremental" for r in results)
        batch_error = batch_graph.error()
        inc_error = inc_graph.error()
        assert inc_error <= 1.05 * batch_error
        deltas = [
            np.linalg.norm(
                se3.translation_part(a) - se3.translation_part(b)
            )
            for a, b in zip(batch_graph.nodes, inc_graph.nodes)
        ]
        assert max(deltas) < 0.05  # meters, on a 5 m-radius circle

    def test_incremental_solves_are_local(self):
        """Incremental calls touch a bounded neighborhood, not the
        whole (growing) graph — the point of the iSAM-style path."""
        measurements, loops = multi_lap_schedule(laps=4, per_lap=30)
        _, results = replay_schedule(measurements, loops, incremental=True)
        incremental = [r for r in results if r.mode == "incremental"]
        assert incremental
        n_free_at_end = len(measurements)  # nodes minus the gauge
        assert all(r.n_active_nodes < n_free_at_end for r in incremental)
        late = incremental[len(incremental) // 2 :]
        assert max(r.n_active_nodes for r in late) < n_free_at_end / 2

    def test_incremental_error_accounting_is_consistent(self):
        """final_error from cached accounting equals a recomputation."""
        measurements, loops = multi_lap_schedule(laps=3)
        graph, results = replay_schedule(measurements, loops, incremental=True)
        np.testing.assert_allclose(
            graph.error(), results[-1].final_error, rtol=1e-9, atol=1e-12
        )
        for result in results:
            assert result.final_error <= result.initial_error + 1e-12

    def test_first_call_with_new_edges_runs_batch(self, rng):
        """Without a prior batch there is no linearization to reuse."""
        truth = circle_truth(8)
        graph = noisy_odometry_graph(truth, rng, scale=0.02)
        graph.add_edge(7, 0, se3.compose(se3.invert(truth[7]), truth[0]))
        result = graph.optimize(new_edges=list(range(len(graph.edges))))
        assert result.mode == "batch"

    def test_unknown_new_edges_rejected(self, rng):
        truth = circle_truth(6)
        graph = noisy_odometry_graph(truth, rng, scale=0.02)
        graph.optimize()
        with pytest.raises(ValueError):
            graph.optimize(new_edges=[len(graph.edges)])
        other = PoseGraph()
        other.add_node(se3.identity())
        other.add_node(se3.identity())
        foreign = other.add_edge(0, 1, se3.identity())
        with pytest.raises(ValueError):
            graph.optimize(new_edges=[foreign])
