"""Adversarial mapping: false closures, robust kernels, quarantine gates.

The robust back end exists for exactly one failure mode: a loop-closure
edge that is confidently wrong.  These tests inject one directly into a
pose graph (and, at the system level, force the mapper's health gates)
and check that the damage stays bounded under the robustified solvers
while the quadratic baseline visibly distorts.
"""

import numpy as np
import pytest

from repro.geometry import se3
from repro.io import SceneSuite, default_test_model
from repro.mapping import (
    StreamingMapper,
    urban_loop_mapper_config,
    urban_loop_pipeline,
)
from repro.mapping.keyframes import Keyframe
from repro.mapping.loop_closure import LoopCloser
from repro.mapping.pose_graph import PoseGraph, PoseGraphConfig
from repro.registration import HealthConfig, RecoveryConfig


def translation(x: float, y: float) -> np.ndarray:
    pose = np.eye(4)
    pose[0, 3] = x
    pose[1, 3] = y
    return pose


def circle_graph(n: int = 10, radius: float = 5.0):
    """A loop of ``n`` nodes with exact odometry and one true closure."""
    graph = PoseGraph()
    poses = []
    for k in range(n):
        angle = 2.0 * np.pi * k / n
        pose = translation(radius * np.cos(angle), radius * np.sin(angle))
        poses.append(pose)
        graph.add_node(pose)
    for k in range(n - 1):
        graph.add_edge(
            k, k + 1, se3.compose(se3.invert(poses[k]), poses[k + 1])
        )
    graph.add_edge(
        n - 1, 0, se3.compose(se3.invert(poses[n - 1]), poses[0]),
        kind="loop",
    )
    return graph, poses


def max_displacement(graph: PoseGraph, reference) -> float:
    return max(
        float(np.linalg.norm(pose[:3, 3] - truth[:3, 3]))
        for pose, truth in zip(graph.nodes, reference)
    )


class TestFalseClosureContainment:
    """An identity 'closure' between opposite sides of the circle."""

    def attacked(self, config: PoseGraphConfig):
        graph, truth = circle_graph()
        # Nodes 0 and 5 are a diameter apart; the false edge claims
        # they coincide.
        false_edge_index = len(graph.edges)
        graph.add_edge(0, 5, np.eye(4), kind="loop")
        result = graph.optimize(config)
        return graph, truth, result, false_edge_index

    def test_quadratic_baseline_distorts(self):
        graph, truth, result, _ = self.attacked(PoseGraphConfig())
        assert max_displacement(graph, truth) > 1.0
        # No robustness knob active: the diagnostics stay empty.
        assert result.edge_robust_weights == []
        assert result.edge_chi2 == []

    def test_dcs_contains_the_damage(self):
        graph, truth, result, false_index = self.attacked(
            PoseGraphConfig(loop_switch_phi=1.0)
        )
        assert max_displacement(graph, truth) < 0.1
        # Per-edge diagnostics cover the whole graph, the injected
        # edge is switched nearly off, and the honest edges keep full
        # influence.
        assert len(result.edge_robust_weights) == len(graph.edges)
        assert len(result.edge_chi2) == len(graph.edges)
        assert result.edge_robust_weights[false_index] < 0.01
        assert result.edge_chi2[false_index] > 10.0
        honest = [
            weight
            for index, weight in enumerate(result.edge_robust_weights)
            if index != false_index
        ]
        assert min(honest) > 0.99

    def test_cauchy_beats_quadratic(self):
        # Cauchy redescends, so a gross outlier loses almost all its
        # influence; Huber's linear tail keeps pulling and is not a
        # sufficient defense at this error magnitude.
        quadratic_graph, truth, _, _ = self.attacked(PoseGraphConfig())
        cauchy_graph, _, result, false_index = self.attacked(
            PoseGraphConfig(robust_kernel="cauchy", robust_delta=1.0)
        )
        assert max_displacement(cauchy_graph, truth) < 0.25 * max_displacement(
            quadratic_graph, truth
        )
        assert len(result.edge_robust_weights) == len(cauchy_graph.edges)
        assert result.edge_robust_weights[false_index] < 0.05

    def test_robustness_transparent_without_outliers(self):
        honest, truth = circle_graph()
        honest.optimize(PoseGraphConfig())
        robust, _ = circle_graph()
        result = robust.optimize(PoseGraphConfig(loop_switch_phi=1.0))
        for a, b in zip(honest.nodes, robust.nodes):
            assert np.allclose(a, b, atol=1e-9)
        # Consistent closures pass through DCS exactly unchanged.
        assert all(weight == 1.0 for weight in result.edge_robust_weights)


class TestQuarantineGate:
    def keyframe(self, index: int, x: float, quarantined: bool) -> Keyframe:
        return Keyframe(
            index=index,
            frame_index=index,
            odometry_pose=translation(x, 0.0),
            state=None,
            quarantined=quarantined,
        )

    def test_quarantined_keyframes_never_candidates(self):
        closer = LoopCloser(urban_loop_pipeline())
        keyframes = [
            self.keyframe(0, 0.0, quarantined=False),
            self.keyframe(1, 0.5, quarantined=True),
            self.keyframe(2, 1.0, quarantined=False),
        ] + [self.keyframe(3 + k, 50.0 + k, quarantined=False) for k in range(5)]
        poses = [keyframe.odometry_pose for keyframe in keyframes]
        # The newest keyframe sits back at the start: 0, 1, 2 are all
        # within closure distance and past the keyframe gap — but 1 is
        # quarantined and must not appear.
        keyframes.append(self.keyframe(8, 0.25, quarantined=False))
        poses.append(keyframes[-1].odometry_pose)
        candidates = closer.candidates(keyframes, poses, current=8)
        assert 1 not in candidates
        assert 0 in candidates
        assert 2 in candidates


class TestMapperHealthGates:
    @pytest.fixture(scope="class")
    def half_loop(self):
        suite = SceneSuite.default(n_frames=24, model=default_test_model())
        return suite.sequence("urban_loop")

    def run_mapper(self, sequence, **config_overrides) -> StreamingMapper:
        mapper = StreamingMapper(
            urban_loop_pipeline(),
            urban_loop_mapper_config(**config_overrides),
        )
        for frame in sequence.frames:
            mapper.push(frame)
        return mapper

    def test_closure_health_gate_rejects_and_counts(self, half_loop):
        reference = self.run_mapper(half_loop)
        assert reference.stats.n_loop_closures > 0

        # A closure gate nothing passes: every verified closure is
        # rejected and counted, the pose graph never optimizes, and the
        # trajectory falls back to open-loop odometry bit for bit.
        gated = self.run_mapper(
            half_loop, closure_health=HealthConfig(max_rmse=1e-12)
        )
        assert gated.stats.n_rejected_closures >= reference.stats.n_loop_closures
        assert gated.stats.n_loop_closures == 0
        assert gated.stats.n_optimizations == 0
        open_loop = self.run_mapper(half_loop, enable_loop_closure=False)
        assert all(
            np.array_equal(ours, reference_pose)
            for ours, reference_pose in zip(
                gated.trajectory(), open_loop.trajectory()
            )
        )
        assert "health-rejected" in gated.stats.summary()

    def test_bridged_frames_quarantine_keyframes(self, half_loop):
        # Force the odometry ladder to bridge every pair: keyframes
        # built on bridged poses are quarantined and anchor no closures.
        mapper = self.run_mapper(
            half_loop,
            recovery=RecoveryConfig(
                health=HealthConfig(max_median_residual=1e-12)
            ),
        )
        assert mapper.stats.n_quarantined_keyframes > 0
        assert mapper.stats.n_loop_closures == 0
        assert "quarantined" in mapper.stats.summary()
        quarantined = [
            keyframe for keyframe in mapper.keyframes if keyframe.quarantined
        ]
        assert len(quarantined) == mapper.stats.n_quarantined_keyframes
