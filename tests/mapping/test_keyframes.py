"""Unit tests for keyframe selection."""

import numpy as np
import pytest

from repro.geometry import se3
from repro.mapping import KeyframeConfig, KeyframePolicy


class TestKeyframePolicy:
    def test_first_frame_is_always_a_keyframe(self):
        policy = KeyframePolicy(KeyframeConfig(1e9, 1e9))
        assert policy.is_keyframe(None, se3.identity())

    def test_below_both_thresholds_is_not_a_keyframe(self):
        policy = KeyframePolicy(
            KeyframeConfig(translation_threshold=1.0, rotation_threshold_deg=10.0)
        )
        pose = se3.make_transform(se3.rot_z(np.radians(5.0)), [0.5, 0, 0])
        assert not policy.is_keyframe(se3.identity(), pose)

    def test_translation_threshold_triggers(self):
        policy = KeyframePolicy(
            KeyframeConfig(translation_threshold=1.0, rotation_threshold_deg=10.0)
        )
        pose = se3.make_transform(np.eye(3), [1.0, 0, 0])
        assert policy.is_keyframe(se3.identity(), pose)

    def test_rotation_threshold_triggers(self):
        policy = KeyframePolicy(
            KeyframeConfig(translation_threshold=1.0, rotation_threshold_deg=10.0)
        )
        pose = se3.make_transform(se3.rot_z(np.radians(10.01)), [0, 0, 0])
        assert policy.is_keyframe(se3.identity(), pose)

    def test_motion_is_relative_to_last_keyframe(self):
        policy = KeyframePolicy(
            KeyframeConfig(translation_threshold=1.0, rotation_threshold_deg=360.0)
        )
        last = se3.make_transform(np.eye(3), [10.0, 0, 0])
        near = se3.make_transform(np.eye(3), [10.5, 0, 0])
        far = se3.make_transform(np.eye(3), [11.5, 0, 0])
        assert not policy.is_keyframe(last, near)
        assert policy.is_keyframe(last, far)

    def test_zero_thresholds_keep_every_frame(self):
        policy = KeyframePolicy(KeyframeConfig(0.0, 0.0))
        assert policy.is_keyframe(se3.identity(), se3.identity())

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ValueError):
            KeyframeConfig(translation_threshold=-1.0)
        with pytest.raises(ValueError):
            KeyframeConfig(rotation_threshold_deg=-1.0)
