"""The StageProfiler is a shim over the tracer: both views must agree.

The profiler's stage table and the tracer's ``category == "stage"``
span rollup are two serializations of the *same* measurement (the shim
closes each stage span with its own measured elapsed time), so they
must match bit-for-bit — not approximately.  These tests pin that on a
real pipeline run, and pin that attaching a tracer never perturbs the
numerical results.
"""

import numpy as np
import pytest

from repro.profiling import StageProfiler
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    Pipeline,
    PipelineConfig,
    RPCEConfig,
)
from repro.telemetry import Tracer


def quick_pipeline() -> Pipeline:
    return Pipeline(
        PipelineConfig(
            keypoints=KeypointConfig(
                method="uniform", params={"voxel_size": 3.0}, min_keypoints=10
            ),
            icp=ICPConfig(rpce=RPCEConfig(max_distance=1.5), max_iterations=8),
            voxel_downsample=1.0,
        )
    )


@pytest.fixture(scope="module")
def traced_run(lidar_pair):
    source, target, _ = lidar_pair
    tracer = Tracer()
    profiler = StageProfiler(tracer=tracer)
    result = quick_pipeline().register(source, target, profiler=profiler)
    return tracer, profiler, result


class TestShimEquivalence:
    def test_stage_rollup_matches_table_exactly(self, traced_run):
        tracer, profiler, _ = traced_run
        rollup = tracer.stage_rollup()
        assert set(rollup) == set(profiler.stages)
        for name, timing in profiler.stages.items():
            entry = rollup[name]
            # Bit-for-bit: the shim closes each span with the table's
            # elapsed time and forwards the same charges.
            assert entry["total"] == timing.total
            assert entry["kdtree_search"] == timing.kdtree_search
            assert entry["kdtree_construction"] == timing.kdtree_construction
            assert entry["calls"] == timing.calls

    def test_fractions_recoverable_from_rollup(self, traced_run):
        tracer, profiler, _ = traced_run
        rollup = tracer.stage_rollup()
        total = sum(entry["total"] for entry in rollup.values())
        fractions = {name: entry["total"] / total for name, entry in rollup.items()}
        assert fractions == profiler.stage_fractions()

    def test_stage_spans_nest_under_structural_spans(self, lidar_pair):
        source, target, _ = lidar_pair
        tracer = Tracer()
        profiler = StageProfiler(tracer=tracer)
        quick_pipeline().register(source, target, profiler=profiler)
        # register() = preprocess x2 + match; stage spans live inside.
        root_names = [root.name for root in tracer.roots]
        assert root_names == ["preprocess", "preprocess", "match"]
        match = tracer.roots[2]
        assert "icp" in [child.name for child in match.children]
        stage_names = {
            span.name
            for root in tracer.roots
            for span in root.walk()
            if span.category == "stage"
        }
        assert stage_names == set(profiler.stages)

    def test_tracing_does_not_perturb_results(self, lidar_pair):
        source, target, _ = lidar_pair
        bare = quick_pipeline().register(source, target)
        profiler = StageProfiler(tracer=Tracer())
        traced = quick_pipeline().register(source, target, profiler=profiler)
        assert np.array_equal(bare.transformation, traced.transformation)
        assert bare.icp.iterations == traced.icp.iterations
        assert bare.icp.rmse == traced.icp.rmse

    def test_search_counters_reach_the_registry(self, traced_run):
        tracer, _, _ = traced_run
        assert tracer.counters.get("queries") > 0
        assert tracer.counters.get("nodes_visited") > 0
