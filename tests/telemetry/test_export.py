"""Tests for the Chrome-trace and JSONL exporters (and their validator)."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.telemetry import (
    JSONL_SCHEMA,
    Tracer,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.telemetry.tracer import STAGE_CATEGORY

_CHECK_TRACE = Path(__file__).resolve().parents[2] / "tools" / "check_trace.py"


def load_check_trace():
    """Import ``tools/check_trace.py`` (not a package) by file path."""
    spec = importlib.util.spec_from_file_location("check_trace", _CHECK_TRACE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def sample_tracer() -> Tracer:
    tracer = Tracer()
    pair = tracer.begin("pair", index=0)
    span = tracer.begin("RPCE", category=STAGE_CATEGORY)
    tracer.count("nodes_visited", 42)
    tracer.charge_search(0.01)
    tracer.end(span, duration=0.05)
    tracer.end(pair, duration=0.1)
    return tracer


class TestChromeEvents:
    def test_balanced_tree_order(self):
        events = chrome_trace_events(sample_tracer())
        durational = [e for e in events if e["ph"] in "BE"]
        assert [(e["ph"], e["name"]) for e in durational] == [
            ("B", "pair"),
            ("B", "RPCE"),
            ("E", "RPCE"),
            ("E", "pair"),
        ]

    def test_timestamps_relative_and_ordered(self):
        events = [e for e in chrome_trace_events(sample_tracer()) if e["ph"] in "BE"]
        timestamps = [e["ts"] for e in events]
        assert timestamps[0] == 0.0
        assert timestamps == sorted(timestamps)
        # The stage closed with duration=0.05 -> 50,000 us later.
        assert timestamps[2] - timestamps[1] == pytest.approx(50_000, abs=1)

    def test_stage_category_and_args(self):
        events = chrome_trace_events(sample_tracer())
        begin = next(e for e in events if e["ph"] == "B" and e["name"] == "RPCE")
        assert begin["cat"] == STAGE_CATEGORY
        assert begin["args"]["nodes_visited"] == 42
        assert begin["args"]["kdtree_search_s"] == pytest.approx(0.01)

    def test_thread_name_metadata(self):
        events = chrome_trace_events(sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "thread_name"
        assert meta[0]["args"]["name"] == "main"

    def test_adopted_subtree_gets_worker_track(self):
        worker = Tracer()
        with worker.span("group"):
            pass
        payload = worker.freeze()
        payload["pid"] = worker.pid + 1
        parent = Tracer()
        with parent.span("explore"):
            parent.adopt(payload)
        events = chrome_trace_events(parent)
        group_begin = next(
            e for e in events if e["ph"] == "B" and e["name"] == "group"
        )
        assert group_begin["tid"] == worker.pid + 1
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {"main", f"worker-{worker.pid + 1}"}


class TestWriteChromeTrace:
    def test_payload_and_validator(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(
            sample_tracer(),
            str(path),
            profiler_totals={"RPCE": 0.05},
            meta={"bench": "unit"},
        )
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"] == {"bench": "unit"}
        assert payload["profilerTotals"] == {"RPCE": 0.05}
        assert payload["counterTotals"] == {"nodes_visited": 42}
        assert load_check_trace().check_trace(payload) == []

    def test_validator_flags_imbalance(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_tracer(), str(path))
        payload = json.loads(path.read_text())
        payload["traceEvents"] = [
            e
            for e in payload["traceEvents"]
            if not (e["ph"] == "E" and e["name"] == "RPCE")
        ]
        failures = load_check_trace().check_trace(payload)
        assert failures  # unclosed span must be reported
        assert any("RPCE" in failure for failure in failures)

    def test_validator_flags_profiler_disagreement(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(
            sample_tracer(), str(path), profiler_totals={"RPCE": 0.05}
        )
        payload = json.loads(path.read_text())
        payload["profilerTotals"]["RPCE"] = 0.5  # 10x off
        failures = load_check_trace().check_trace(payload)
        assert any("RPCE" in failure for failure in failures)


class TestWriteJsonl:
    def test_records_and_schema(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(sample_tracer(), str(path), meta={"bench": "unit"})
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        header, *spans, counters = records
        assert header["record"] == "header"
        assert header["schema"] == JSONL_SCHEMA
        assert header["meta"] == {"bench": "unit"}
        assert [s["record"] for s in spans] == ["span", "span"]
        assert [s["path"] for s in spans] == ["pair", "pair/RPCE"]
        assert [s["depth"] for s in spans] == [0, 1]
        stage = spans[1]
        assert stage["category"] == STAGE_CATEGORY
        assert stage["dur_s"] == pytest.approx(0.05)
        assert stage["counters"] == {"nodes_visited": 42}
        assert stage["charges"]["kdtree_search"] == pytest.approx(0.01)
        assert counters["record"] == "counters"
        assert counters["totals"] == {"nodes_visited": 42}


class TestWriteTraceDispatch:
    def test_jsonl_extension_gets_run_record(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace(sample_tracer(), str(path))
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == JSONL_SCHEMA

    def test_json_extension_gets_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(sample_tracer(), str(path))
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
