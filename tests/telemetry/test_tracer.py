"""Unit tests for the hierarchical span tracer and counter registry."""

import time

import pytest

from repro.kdtree import SearchStats
from repro.telemetry import NULL_TRACER, CounterRegistry, NullTracer, Tracer, tracer_of
from repro.telemetry.tracer import FREEZE_SCHEMA, STAGE_CATEGORY


class TestSpanLifecycle:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert all(span.end is not None for span in outer.walk())

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            tracer.end(outer)

    def test_duration_override(self):
        tracer = Tracer()
        span = tracer.begin("stage")
        tracer.end(span, duration=1.25)
        assert span.duration == pytest.approx(1.25)

    def test_measured_duration_is_wall_time(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            time.sleep(0.002)
        assert span.duration >= 0.002

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.current is None
        assert tracer.roots[0].end is not None

    def test_begin_args_are_coerced(self):
        import numpy as np

        tracer = Tracer()
        with tracer.span("s", count=np.int64(3), label="x") as span:
            pass
        assert span.args == {"count": 3, "label": "x"}
        assert type(span.args["count"]) is int


class TestAnnotationsAndCounters:
    def test_annotate_hits_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.annotate(iterations=4)
        assert inner.args == {"iterations": 4}
        assert tracer.roots[0].args == {}

    def test_annotate_outside_span_is_noop(self):
        Tracer().annotate(ignored=1)  # must not raise

    def test_count_charges_span_and_registry(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.count("queries", 5)
            tracer.count("queries")
        assert span.counters == {"queries": 6}
        assert tracer.counters.get("queries") == 6

    def test_total_counters_roll_up(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.count("visits", 1)
            with tracer.span("inner"):
                tracer.count("visits", 10)
        assert outer.total_counters() == {"visits": 11}
        assert outer.counters == {"visits": 1}

    def test_count_stats_attaches_nonzero_fields(self):
        tracer = Tracer()
        stats = SearchStats(nodes_visited=7, queries=2)
        with tracer.span("s") as span:
            tracer.count_stats(stats)
        assert span.counters == {"nodes_visited": 7, "queries": 2}
        assert tracer.counters.get("nodes_visited") == 7

    def test_count_stats_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            Tracer().count_stats({"not": "a dataclass"})

    def test_charges_hit_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.charge_search(0.5)
            with tracer.span("inner") as inner:
                tracer.charge_search(0.2)
                tracer.charge_construction(0.1)
        assert outer.charges == {"kdtree_search": 0.5}
        assert inner.charges == {
            "kdtree_search": 0.2,
            "kdtree_construction": 0.1,
        }
        assert outer.total_charges() == pytest.approx(
            {"kdtree_search": 0.7, "kdtree_construction": 0.1}
        )


class TestFreezeAdopt:
    def make_worker_trace(self) -> Tracer:
        worker = Tracer()
        with worker.span("group", scene="urban"):
            span = worker.begin("config")
            worker.count("pairs", 3)
            worker.end(span, duration=0.25)
        return worker

    def test_freeze_schema_and_shape(self):
        worker = self.make_worker_trace()
        payload = worker.freeze()
        assert payload["schema"] == FREEZE_SCHEMA
        assert payload["pid"] == worker.pid
        assert [span["name"] for span in payload["spans"]] == ["group"]
        assert payload["counters"] == {"pairs": 3}

    def test_adopt_rebases_and_preserves_durations(self):
        worker = self.make_worker_trace()
        payload = worker.freeze()
        payload["pid"] = worker.pid + 1  # simulate a child process
        parent = Tracer()
        with parent.span("explore"):
            adopted = parent.adopt(payload)
        group = adopted[0]
        assert group.name == "group"
        assert parent.roots[0].children == [group]
        # Durations survive the clock rebase exactly.
        assert group.children[0].duration == pytest.approx(0.25)
        # Foreign-pid subtrees carry their origin pid as the track.
        assert all(span.track == worker.pid + 1 for span in group.walk())
        assert parent.counters.get("pairs") == 3

    def test_adopt_same_pid_stays_on_main_track(self):
        worker = self.make_worker_trace()
        parent = Tracer()
        parent.adopt(worker.freeze())
        assert all(span.track is None for span in parent.roots[0].walk())

    def test_adopt_without_open_span_extends_roots(self):
        parent = Tracer()
        parent.adopt(self.make_worker_trace().freeze())
        assert [root.name for root in parent.roots] == ["group"]

    def test_adopt_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Tracer().adopt({"schema": "something/else", "spans": []})

    def test_adopted_absolute_times_agree(self):
        worker = self.make_worker_trace()
        original = worker.roots[0]
        parent = Tracer()
        adopted = parent.adopt(worker.freeze())[0]
        assert parent.epoch + adopted.start == pytest.approx(
            worker.epoch + original.start, abs=1e-6
        )


class TestStageRollup:
    def test_rollup_sums_stage_spans_only(self):
        tracer = Tracer()
        with tracer.span("pair"):  # structural: excluded
            span = tracer.begin("RPCE", category=STAGE_CATEGORY)
            tracer.charge_search(0.3)
            tracer.end(span, duration=1.0)
            span = tracer.begin("RPCE", category=STAGE_CATEGORY)
            tracer.charge_construction(0.1)
            tracer.end(span, duration=0.5)
        rollup = tracer.stage_rollup()
        assert set(rollup) == {"RPCE"}
        assert rollup["RPCE"]["total"] == pytest.approx(1.5)
        assert rollup["RPCE"]["kdtree_search"] == pytest.approx(0.3)
        assert rollup["RPCE"]["kdtree_construction"] == pytest.approx(0.1)
        assert rollup["RPCE"]["calls"] == 2


class TestCounterRegistry:
    def test_add_get_totals(self):
        registry = CounterRegistry()
        registry.add("visits", 5)
        registry.add("visits", 2)
        registry.add("queries")
        assert registry.get("visits") == 7
        assert registry.get("missing") == 0
        assert registry.totals() == {"visits": 7, "queries": 1}

    def test_merge_folds_totals(self):
        a = CounterRegistry()
        a.add("visits", 5)
        b = CounterRegistry()
        b.add("visits", 2)
        b.add("queries", 1)
        a.merge(b.totals())
        assert a.totals() == {"visits": 7, "queries": 1}
        assert len(a) == 2
        assert "visits" in a


class TestNullTracer:
    def test_all_methods_are_noops(self):
        null = NullTracer()
        with null.span("anything", key=1) as span:
            null.annotate(x=1)
            null.count("n", 5)
            null.count_stats(SearchStats(queries=1))
            null.charge_search(1.0)
            null.charge_construction(1.0)
        assert span.total_counters() == {}
        assert span.total_charges() == {}
        assert null.stage_rollup() == {}
        assert null.roots == ()
        assert not null.enabled

    def test_span_context_is_preallocated(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")

    def test_tracer_of(self):
        from repro.profiling import StageProfiler

        assert tracer_of(None) is NULL_TRACER
        assert tracer_of(StageProfiler()) is NULL_TRACER
        tracer = Tracer()
        assert tracer_of(StageProfiler(tracer=tracer)) is tracer
