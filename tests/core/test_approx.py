"""Unit tests for the approximate leaders/followers search (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    ApproximateSearch,
    ApproximateSearchConfig,
    TwoStageKDTree,
)
from repro.kdtree import SearchStats, bruteforce


@pytest.fixture
def points(rng):
    return rng.normal(size=(400, 3))


@pytest.fixture
def tree(points):
    return TwoStageKDTree(points, top_height=3)


class TestConfig:
    def test_defaults_match_paper(self):
        config = ApproximateSearchConfig()
        assert config.nn_threshold == pytest.approx(1.2)
        assert config.radius_threshold_fraction == pytest.approx(0.4)
        assert config.leader_capacity == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproximateSearchConfig(nn_threshold=-1.0)
        with pytest.raises(ValueError):
            ApproximateSearchConfig(radius_threshold_fraction=1.5)
        with pytest.raises(ValueError):
            ApproximateSearchConfig(leader_capacity=-1)
        with pytest.raises(ValueError):
            ApproximateSearchConfig(leader_result_k=0)


class TestLeaderMechanics:
    def test_first_query_becomes_leader(self, tree, rng):
        search = ApproximateSearch(tree)
        traces = []
        search.nn(rng.normal(size=3), trace=traces)
        visits = [v for v in traces[0].leaf_visits if not v.pruned]
        assert any(v.became_leader for v in visits)
        assert search.total_leaders >= 1

    def test_nearby_query_follows(self, tree, rng):
        search = ApproximateSearch(tree, ApproximateSearchConfig(nn_threshold=5.0))
        query = rng.normal(size=3)
        search.nn(query)
        traces = []
        search.nn(query + 1e-4, trace=traces)
        visits = [v for v in traces[0].leaf_visits if not v.pruned]
        assert any(v.approximate for v in visits)

    def test_follower_scans_less(self, tree, rng):
        search = ApproximateSearch(tree, ApproximateSearchConfig(nn_threshold=5.0))
        query = rng.normal(size=3)
        leader_stats = SearchStats()
        search.nn(query, leader_stats)
        follower_stats = SearchStats()
        search.nn(query + 1e-4, follower_stats)
        assert follower_stats.nodes_visited < leader_stats.nodes_visited
        assert follower_stats.leader_checks > 0

    def test_far_query_becomes_new_leader(self, tree):
        search = ApproximateSearch(
            tree, ApproximateSearchConfig(nn_threshold=1e-9)
        )
        search.nn(np.array([0.1, 0.1, 0.1]))
        before = search.total_leaders
        search.nn(np.array([0.1, 0.1, 0.15]))
        assert search.total_leaders > before

    def test_leader_capacity_respected(self, points):
        tree = TwoStageKDTree(points, top_height=0)  # single leaf set
        search = ApproximateSearch(
            tree,
            ApproximateSearchConfig(nn_threshold=1e-12, leader_capacity=4),
        )
        rng = np.random.default_rng(0)
        for query in rng.normal(size=(20, 3)):
            search.nn(query)
        assert search.leader_count(0) == 4

    def test_capacity_overflow_falls_back_to_exact(self, points, rng):
        tree = TwoStageKDTree(points, top_height=0)
        search = ApproximateSearch(
            tree, ApproximateSearchConfig(nn_threshold=1e-12, leader_capacity=1)
        )
        search.nn(rng.normal(size=3))
        # Second far query: buffer full, must scan exhaustively (exact).
        query = rng.normal(size=3) + 10.0
        idx, dist = search.nn(query)
        _, bf_dist = bruteforce.nn(points, query)
        assert dist == pytest.approx(bf_dist, abs=1e-9)

    def test_reset_clears_leaders(self, tree, rng):
        search = ApproximateSearch(tree)
        search.nn_batch(rng.normal(size=(10, 3)))
        assert search.total_leaders > 0
        search.reset()
        assert search.total_leaders == 0


class TestAccuracy:
    """Approximation quality: results are near-exact on dense data."""

    def test_nn_results_mostly_exact(self, points, tree):
        # Tight threshold + top-8 leader results: high-fidelity setting.
        # (The paper's thd = 1.2 m targets LiDAR point spacing; this
        # random cloud is denser, so the threshold scales down too.)
        search = ApproximateSearch(
            tree,
            ApproximateSearchConfig(nn_threshold=0.1, leader_result_k=8),
        )
        queries = points + np.random.default_rng(1).normal(
            scale=0.02, size=points.shape
        )
        exact = 0
        for query in queries[:150]:
            idx, _ = search.nn(query)
            bf_idx, _ = bruteforce.nn(points, query)
            exact += idx == bf_idx
        assert exact / 150 > 0.7

    def test_nn_distance_error_bounded(self, points, tree, rng):
        search = ApproximateSearch(tree)
        worst = 0.0
        for query in rng.normal(size=(100, 3)):
            _, dist = search.nn(query)
            _, bf_dist = bruteforce.nn(points, query)
            worst = max(worst, dist - bf_dist)
        # Approximate NN can be off, but not beyond the threshold scale.
        assert worst <= search.config.nn_threshold + 1e-9

    def test_radius_returns_subset_of_exact(self, points, tree, rng):
        search = ApproximateSearch(tree)
        for query in rng.normal(size=(30, 3)):
            indices, dists = search.radius(query, 0.8)
            bf_indices, _ = bruteforce.radius(points, query, 0.8)
            assert set(indices.tolist()) <= set(bf_indices.tolist())
            assert np.all(dists <= 0.8 + 1e-12)

    def test_radius_recall_reasonable(self, points, tree, rng):
        search = ApproximateSearch(tree)
        found = total = 0
        for query in points[:100]:
            indices, _ = search.radius(query, 0.8)
            bf_indices, _ = bruteforce.radius(points, query, 0.8)
            found += len(set(indices.tolist()) & set(bf_indices.tolist()))
            total += len(bf_indices)
        assert found / total > 0.6

    def test_zero_threshold_is_exact(self, points, rng):
        tree = TwoStageKDTree(points, top_height=3)
        search = ApproximateSearch(
            tree,
            ApproximateSearchConfig(
                nn_threshold=0.0, radius_threshold_fraction=0.0
            ),
        )
        for query in rng.normal(size=(25, 3)):
            _, dist = search.nn(query)
            _, bf_dist = bruteforce.nn(points, query)
            assert dist == pytest.approx(bf_dist, abs=1e-9)
            indices, _ = search.radius(query, 0.7)
            bf_indices, _ = bruteforce.radius(points, query, 0.7)
            assert set(indices.tolist()) == set(bf_indices.tolist())


class TestWorkReduction:
    """The whole point: followers cut node visits (paper Sec. 6.3)."""

    def test_batch_visits_fewer_nodes_than_exact(self, points, rng):
        tree = TwoStageKDTree(points, top_height=2)
        queries = np.repeat(points[:50], 4, axis=0) + rng.normal(
            scale=0.05, size=(200, 3)
        )
        exact_stats = SearchStats()
        tree.nn_batch(queries, exact_stats)
        approx_stats = SearchStats()
        ApproximateSearch(tree).nn_batch(queries, approx_stats)
        assert approx_stats.total_work < exact_stats.nodes_visited

    def test_radius_work_reduction(self, points, rng):
        # Clustered queries (as in a dense LiDAR sweep): followers fire.
        tree = TwoStageKDTree(points, top_height=2)
        queries = np.repeat(points[:40], 5, axis=0) + rng.normal(
            scale=0.03, size=(200, 3)
        )
        exact_stats = SearchStats()
        tree.radius_batch(queries, 0.8, exact_stats)
        approx_stats = SearchStats()
        ApproximateSearch(tree).radius_batch(queries, 0.8, approx_stats)
        assert approx_stats.total_work < exact_stats.nodes_visited


class TestKNNExtension:
    def test_knn_shapes_and_order(self, tree, rng):
        search = ApproximateSearch(tree)
        indices, dists = search.knn(rng.normal(size=3), 5)
        assert len(indices) == 5
        assert np.all(np.diff(dists) >= 0)

    def test_knn_close_to_exact(self, points, tree):
        search = ApproximateSearch(tree)
        query = points[7] + 0.01
        _, dists = search.knn(query, 3)
        _, bf_dists = bruteforce.knn(points, query, 3)
        assert dists[0] <= bf_dists[0] + search.config.nn_threshold
