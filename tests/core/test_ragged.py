"""Unit tests for the ragged-neighborhood (CSR) kernel layer."""

import numpy as np
import pytest

from repro.core.ragged import (
    RaggedNeighborhoods,
    batched_eigh,
    gathered_moment_covariances,
    gathered_weighted_segment_sums,
    segment_blocks,
    segment_histogram,
    segment_max,
    segment_mean,
    segment_min,
    segment_outer_sums,
    segment_sum,
    segment_sum_sequential,
)


def ragged_case(rng, n_segments=50, max_len=12, allow_empty=True):
    """Random ragged lists (including empty and singleton segments)."""
    lists = []
    for _ in range(n_segments):
        length = int(rng.integers(0 if allow_empty else 1, max_len + 1))
        lists.append(rng.integers(0, 100, size=length).astype(np.int64))
    return lists


class TestRaggedNeighborhoods:
    def test_from_lists_offsets_round_trip(self, rng):
        lists = ragged_case(rng)
        ragged = RaggedNeighborhoods.from_lists(lists)
        assert ragged.n_segments == len(lists)
        assert ragged.n_entries == sum(len(lst) for lst in lists)
        back = ragged.to_lists()
        assert len(back) == len(lists)
        for original, restored in zip(lists, back):
            assert np.array_equal(original, restored)

    def test_counts_and_segment_ids(self, rng):
        lists = ragged_case(rng)
        ragged = RaggedNeighborhoods.from_lists(lists)
        assert np.array_equal(ragged.counts, [len(lst) for lst in lists])
        expected_ids = np.concatenate(
            [np.full(len(lst), q) for q, lst in enumerate(lists)]
        ) if ragged.n_entries else np.empty(0)
        assert np.array_equal(ragged.segment_ids, expected_ids)

    def test_distances_alignment(self, rng):
        lists = ragged_case(rng)
        dists = [rng.random(len(lst)) for lst in lists]
        ragged = RaggedNeighborhoods.from_lists(lists, dists)
        assert len(ragged.distances) == ragged.n_entries
        split = np.split(ragged.distances, ragged.offsets[1:-1])
        for original, restored in zip(dists, split):
            assert np.array_equal(original, restored)

    def test_all_empty(self):
        ragged = RaggedNeighborhoods.from_lists([np.empty(0, dtype=np.int64)] * 4)
        assert ragged.n_segments == 4
        assert ragged.n_entries == 0
        assert np.array_equal(ragged.counts, [0, 0, 0, 0])

    def test_no_segments(self):
        ragged = RaggedNeighborhoods.from_lists([])
        assert ragged.n_segments == 0
        assert ragged.n_entries == 0

    def test_mask_preserves_order_and_may_empty_segments(self, rng):
        lists = ragged_case(rng, allow_empty=False)
        ragged = RaggedNeighborhoods.from_lists(
            lists, [rng.random(len(lst)) for lst in lists]
        )
        keep = ragged.indices % 2 == 0
        masked = ragged.mask(keep)
        expected = [lst[lst % 2 == 0] for lst in lists]
        for original, restored in zip(expected, masked.to_lists()):
            assert np.array_equal(original, restored)
        assert np.array_equal(masked.distances, ragged.distances[keep])

    def test_select_reorders_and_duplicates_segments(self, rng):
        lists = ragged_case(rng, n_segments=10)
        dists = [rng.random(len(lst)) for lst in lists]
        ragged = RaggedNeighborhoods.from_lists(lists, dists)
        order = np.array([3, 3, 0, 9, 1])
        picked = ragged.select(order)
        assert picked.n_segments == len(order)
        split_d = np.split(ragged.distances, ragged.offsets[1:-1])
        for out_row, src_row in enumerate(order):
            got = picked.to_lists()[out_row]
            assert np.array_equal(got, lists[src_row])
            lo, hi = picked.offsets[out_row], picked.offsets[out_row + 1]
            assert np.array_equal(picked.distances[lo:hi], split_d[src_row])

    def test_validation(self):
        with pytest.raises(ValueError):
            RaggedNeighborhoods(np.arange(3), np.array([0, 2]))  # bad end
        with pytest.raises(ValueError):
            RaggedNeighborhoods(np.arange(3), np.array([0, 2, 1, 3]))  # decreasing
        with pytest.raises(ValueError):
            RaggedNeighborhoods(np.arange(3), np.array([0, 3]), np.zeros(2))


class TestSegmentReductions:
    @pytest.fixture()
    def case(self, rng):
        lists = ragged_case(rng)
        ragged = RaggedNeighborhoods.from_lists(lists)
        values = rng.normal(size=ragged.n_entries)
        return ragged, values

    def test_segment_sum_matches_loop(self, case):
        ragged, values = case
        split = np.split(values, ragged.offsets[1:-1])
        expected = [chunk.sum() if len(chunk) else 0.0 for chunk in split]
        np.testing.assert_allclose(
            segment_sum(values, ragged.offsets), expected, rtol=1e-12
        )

    def test_segment_sum_2d(self, case):
        ragged, values = case
        stacked = np.stack([values, 2.0 * values], axis=1)
        result = segment_sum(stacked, ragged.offsets)
        np.testing.assert_allclose(
            result[:, 1], 2.0 * segment_sum(values, ragged.offsets), rtol=1e-12
        )

    def test_segment_sum_sequential_bitwise_matches_loop(self, case):
        """bincount accumulation replays ``acc += x`` exactly."""
        ragged, values = case
        stacked = np.stack([values, values * 3.0, values - 1.0], axis=1)
        result = segment_sum_sequential(
            stacked, ragged.segment_ids, ragged.n_segments
        )
        split = np.split(stacked, ragged.offsets[1:-1])
        for q, chunk in enumerate(split):
            acc = np.zeros(3)
            for row in chunk:
                acc += row
            assert np.array_equal(result[q], acc), f"segment {q}"

    def test_segment_mean_empty_is_zero(self, case):
        ragged, values = case
        means = segment_mean(values, ragged.offsets)
        empty = ragged.counts == 0
        assert np.all(means[empty] == 0.0)
        nonempty = ~empty
        split = np.split(values, ragged.offsets[1:-1])
        expected = [chunk.mean() for chunk in split if len(chunk)]
        np.testing.assert_allclose(means[nonempty], expected, rtol=1e-12)

    def test_segment_min_max_with_fills(self, case):
        ragged, values = case
        lo = segment_min(values, ragged.offsets)
        hi = segment_max(values, ragged.offsets)
        split = np.split(values, ragged.offsets[1:-1])
        for q, chunk in enumerate(split):
            if len(chunk):
                assert lo[q] == chunk.min()
                assert hi[q] == chunk.max()
            else:
                assert lo[q] == np.inf
                assert hi[q] == -np.inf

    def test_single_point_segments(self):
        ragged = RaggedNeighborhoods.from_lists(
            [np.array([3]), np.array([7]), np.array([1])]
        )
        values = np.array([2.5, -1.0, 4.0])
        assert np.array_equal(segment_sum(values, ragged.offsets), values)
        assert np.array_equal(segment_min(values, ragged.offsets), values)
        assert np.array_equal(segment_max(values, ragged.offsets), values)

    def test_segment_histogram_matches_loop(self, rng):
        lists = ragged_case(rng)
        ragged = RaggedNeighborhoods.from_lists(lists)
        n_bins = 7
        bins = rng.integers(0, n_bins, size=ragged.n_entries)
        weights = rng.random(ragged.n_entries)
        result = segment_histogram(
            ragged.segment_ids, bins, n_bins, ragged.n_segments, weights=weights
        )
        counts = segment_histogram(
            ragged.segment_ids, bins, n_bins, ragged.n_segments
        )
        split_bins = np.split(bins, ragged.offsets[1:-1])
        split_weights = np.split(weights, ragged.offsets[1:-1])
        for q in range(ragged.n_segments):
            expected = np.bincount(
                split_bins[q], weights=split_weights[q], minlength=n_bins
            )
            np.testing.assert_allclose(result[q], expected, rtol=1e-12)
            assert np.array_equal(
                counts[q], np.bincount(split_bins[q], minlength=n_bins)
            )


class TestCovarianceKernels:
    def test_segment_outer_sums_matches_loop(self, rng):
        lists = ragged_case(rng)
        ragged = RaggedNeighborhoods.from_lists(lists)
        vectors = rng.normal(size=(ragged.n_entries, 3))
        weights = rng.random(ragged.n_entries)
        plain = segment_outer_sums(vectors, ragged.offsets)
        weighted = segment_outer_sums(vectors, ragged.offsets, weights=weights)
        split_v = np.split(vectors, ragged.offsets[1:-1])
        split_w = np.split(weights, ragged.offsets[1:-1])
        for q in range(ragged.n_segments):
            expected = split_v[q].T @ split_v[q]
            np.testing.assert_allclose(plain[q], expected, atol=1e-12)
            expected_w = (split_v[q] * split_w[q][:, None]).T @ split_v[q]
            np.testing.assert_allclose(weighted[q], expected_w, atol=1e-12)

    @pytest.mark.parametrize("block_pairs", [4, 1 << 20])
    def test_gathered_moment_covariances_matches_loop(self, rng, block_pairs):
        """Raw-moment covariances match mean-centered loop references,
        regardless of where chunk boundaries fall."""
        points = rng.normal(size=(40, 3)) * 0.3 + 5.0
        lists = [
            rng.integers(0, 40, size=int(rng.integers(0, 9))).astype(np.int64)
            for _ in range(25)
        ]
        ragged = RaggedNeighborhoods.from_lists(lists)
        covs, means = gathered_moment_covariances(
            points,
            ragged.indices,
            ragged.offsets,
            center_source=points[:25],
            center_ids=ragged.segment_ids,
            block_pairs=block_pairs,
        )
        for q, lst in enumerate(lists):
            if len(lst) == 0:
                assert np.all(covs[q] == 0.0)
                continue
            local = points[lst] - points[q]
            centered = local - local.mean(axis=0)
            expected = centered.T @ centered / len(lst)
            np.testing.assert_allclose(covs[q], expected, atol=1e-12)
            np.testing.assert_allclose(means[q], local.mean(axis=0), atol=1e-12)

    def test_gathered_moment_covariances_without_centering(self, rng):
        vectors = rng.normal(size=(30, 3))
        lists = [np.arange(30, dtype=np.int64), np.array([4], dtype=np.int64)]
        ragged = RaggedNeighborhoods.from_lists(lists)
        covs, _ = gathered_moment_covariances(
            vectors, ragged.indices, ragged.offsets
        )
        centered = vectors - vectors.mean(axis=0)
        np.testing.assert_allclose(
            covs[0], centered.T @ centered / 30, atol=1e-12
        )
        np.testing.assert_allclose(covs[1], np.zeros((3, 3)), atol=1e-15)

    @pytest.mark.parametrize("block_pairs", [3, 1 << 20])
    def test_gathered_weighted_segment_sums_bitwise(self, rng, block_pairs):
        """Chunked gather+bincount replays ``acc += w * table[j]``
        bit-for-bit, wherever the chunk boundaries fall."""
        table = rng.normal(size=(20, 5))
        lists = [
            rng.integers(0, 20, size=int(rng.integers(0, 7))).astype(np.int64)
            for _ in range(12)
        ]
        ragged = RaggedNeighborhoods.from_lists(lists)
        weights = rng.random(ragged.n_entries)
        result = gathered_weighted_segment_sums(
            table, ragged.indices, weights, ragged.offsets, block_pairs=block_pairs
        )
        split_w = np.split(weights, ragged.offsets[1:-1])
        for q, lst in enumerate(lists):
            acc = np.zeros(5)
            for j, w in zip(lst, split_w[q]):
                acc += w * table[j]
            assert np.array_equal(result[q], acc), f"segment {q}"

    def test_lexsort_voxel_groups_matches_unique(self, rng):
        from repro.core.ragged import lexsort_voxel_groups

        keys = rng.integers(-3, 3, size=(200, 3)).astype(np.int64)
        order, sorted_keys, starts, counts = lexsort_voxel_groups(keys)
        unique = np.unique(keys, axis=0)
        assert len(starts) == len(unique)
        assert np.array_equal(sorted_keys[starts], unique)
        assert counts.sum() == len(keys)
        for g, start in enumerate(starts):
            members = order[start : start + counts[g]]
            assert np.all(keys[members] == sorted_keys[start])

    def test_segment_blocks_cover_all_segments_once(self, rng):
        lists = ragged_case(rng)
        ragged = RaggedNeighborhoods.from_lists(lists)
        seen_segments = []
        seen_entries = 0
        for seg_lo, seg_hi, lo, hi in segment_blocks(ragged.offsets, 8):
            assert lo == ragged.offsets[seg_lo] and hi == ragged.offsets[seg_hi]
            seen_segments.extend(range(seg_lo, seg_hi))
            seen_entries += hi - lo
        assert seen_segments == list(range(ragged.n_segments))
        assert seen_entries == ragged.n_entries

    def test_batched_eigh_masks_degenerate_rows(self, rng):
        matrices = np.zeros((3, 3, 3))
        spd = rng.normal(size=(3, 3))
        matrices[1] = spd @ spd.T
        valid = np.array([False, True, False])
        eigenvalues, eigenvectors = batched_eigh(matrices, valid)
        assert np.all(np.isfinite(eigenvalues))
        single_vals, single_vecs = np.linalg.eigh(matrices[1])
        assert np.array_equal(eigenvalues[1], single_vals)
        assert np.array_equal(eigenvectors[1], single_vecs)
