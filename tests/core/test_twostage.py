"""Unit tests for the two-stage KD-tree data structure."""

import numpy as np
import pytest

from repro.core import TwoStageKDTree
from repro.kdtree import SearchStats, bruteforce


@pytest.fixture
def points(rng):
    return rng.normal(size=(256, 3))


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TwoStageKDTree(np.empty((0, 3)), top_height=2)

    def test_rejects_negative_height(self, points):
        with pytest.raises(ValueError):
            TwoStageKDTree(points, top_height=-1)

    def test_rejects_nan(self):
        bad = np.zeros((4, 3))
        bad[0, 0] = np.inf
        with pytest.raises(ValueError):
            TwoStageKDTree(bad, top_height=1)

    def test_height_zero_single_leaf(self, points):
        tree = TwoStageKDTree(points, top_height=0)
        assert tree.n_top_nodes == 0
        assert tree.n_leaf_sets == 1
        assert tree.leaf_set_sizes[0] == len(points)

    def test_top_tree_node_count(self, points):
        tree = TwoStageKDTree(points, top_height=3)
        # Perfectly balanced: 2^3 - 1 internal nodes, up to 2^3 leaf sets.
        assert tree.n_top_nodes == 7
        assert tree.n_leaf_sets <= 8

    def test_leaf_sets_partition_points(self, points):
        tree = TwoStageKDTree(points, top_height=3)
        all_members = np.concatenate(
            [tree.leaf_set_indices(i) for i in range(tree.n_leaf_sets)]
        )
        # Leaf sets plus top-tree nodes cover every point exactly once.
        assert len(all_members) == len(points) - tree.n_top_nodes
        assert len(set(all_members.tolist())) == len(all_members)

    def test_mean_leaf_size_shrinks_with_height(self, points):
        shallow = TwoStageKDTree(points, top_height=2)
        deep = TwoStageKDTree(points, top_height=5)
        assert deep.mean_leaf_size < shallow.mean_leaf_size

    def test_from_leaf_size_targets_size(self, points):
        tree = TwoStageKDTree.from_leaf_size(points, leaf_size=32)
        assert 16 <= tree.mean_leaf_size <= 64

    def test_from_leaf_size_one_is_canonical_like(self, points):
        tree = TwoStageKDTree.from_leaf_size(points, leaf_size=1)
        assert tree.mean_leaf_size <= 2.0

    def test_from_leaf_size_rejects_zero(self, points):
        with pytest.raises(ValueError):
            TwoStageKDTree.from_leaf_size(points, leaf_size=0)

    def test_height_beyond_log_n(self, points):
        # A top-tree taller than log2(n) degenerates gracefully.
        tree = TwoStageKDTree(points, top_height=20)
        idx, dist = tree.nn(points[0])
        assert dist == pytest.approx(0.0, abs=1e-12)

    def test_repr(self, points):
        text = repr(TwoStageKDTree(points, top_height=3))
        assert "top_height=3" in text


class TestScanLeaf:
    def test_scan_returns_squared_distances(self, points):
        tree = TwoStageKDTree(points, top_height=2)
        query = points[0]
        indices, sq = tree.scan_leaf(0, query)
        members = tree.leaf_set_indices(0)
        assert np.array_equal(np.sort(indices), members)  # members are sorted
        expected = np.sum((points[indices] - query) ** 2, axis=1)
        assert np.allclose(sq, expected)


class TestQueries:
    @pytest.mark.parametrize("top_height", [0, 1, 3, 6])
    def test_nn_matches_bruteforce(self, points, rng, top_height):
        tree = TwoStageKDTree(points, top_height=top_height)
        for query in rng.normal(size=(20, 3)):
            idx, dist = tree.nn(query)
            _, bf_dist = bruteforce.nn(points, query)
            assert dist == pytest.approx(bf_dist, abs=1e-9)

    @pytest.mark.parametrize("top_height", [0, 2, 5])
    def test_radius_matches_bruteforce(self, points, rng, top_height):
        tree = TwoStageKDTree(points, top_height=top_height)
        for query in rng.normal(size=(10, 3)):
            indices, _ = tree.radius(query, 0.9)
            bf_indices, _ = bruteforce.radius(points, query, 0.9)
            assert set(indices.tolist()) == set(bf_indices.tolist())

    @pytest.mark.parametrize("top_height", [0, 2, 5])
    def test_knn_matches_bruteforce(self, points, rng, top_height):
        tree = TwoStageKDTree(points, top_height=top_height)
        for query in rng.normal(size=(10, 3)):
            _, dists = tree.knn(query, 7)
            _, bf_dists = bruteforce.knn(points, query, 7)
            assert np.allclose(dists, bf_dists, atol=1e-9)

    def test_radius_sorted(self, points, rng):
        tree = TwoStageKDTree(points, top_height=3)
        _, dists = tree.radius(rng.normal(size=3), 1.5, sort=True)
        assert np.all(np.diff(dists) >= 0)

    def test_validation(self, points):
        tree = TwoStageKDTree(points, top_height=3)
        with pytest.raises(ValueError):
            tree.nn([1.0, 2.0])
        with pytest.raises(ValueError):
            tree.radius(np.zeros(3), -0.5)
        with pytest.raises(ValueError):
            tree.knn(np.zeros(3), 0)

    def test_batches(self, points, rng):
        tree = TwoStageKDTree(points, top_height=3)
        queries = rng.normal(size=(8, 3))
        indices, dists = tree.nn_batch(queries)
        assert len(indices) == 8
        radius_indices, _ = tree.radius_batch(queries, 0.8)
        assert len(radius_indices) == 8
        knn_indices, _ = tree.knn_batch(queries, 4)
        assert len(knn_indices) == 8


class TestRedundancy:
    """The defining property of Fig. 6: parallelism costs node visits."""

    def test_shorter_top_tree_visits_more_nodes(self, points, rng):
        queries = rng.normal(size=(30, 3))
        visits = {}
        for height in (1, 3, 6):
            tree = TwoStageKDTree(points, top_height=height)
            stats = SearchStats()
            tree.nn_batch(queries, stats)
            visits[height] = stats.nodes_visited
        assert visits[1] > visits[3] > visits[6]

    def test_height_zero_visits_everything(self, points, rng):
        tree = TwoStageKDTree(points, top_height=0)
        stats = SearchStats()
        tree.nn(rng.normal(size=3), stats)
        assert stats.nodes_visited == len(points)

    def test_nn_redundancy_grows_faster_than_radius(self, points, rng):
        """Paper Fig. 6a: NN search suffers more from exhaustive leaves
        than radius search because it prunes better in the classic tree."""
        queries = rng.normal(size=(30, 3))
        r = 0.9

        def visits(height, kind):
            tree = TwoStageKDTree(points, top_height=height)
            stats = SearchStats()
            if kind == "nn":
                tree.nn_batch(queries, stats)
            else:
                tree.radius_batch(queries, r, stats)
            return stats.nodes_visited

        deep_nn, shallow_nn = visits(6, "nn"), visits(1, "nn")
        deep_r, shallow_r = visits(6, "radius"), visits(1, "radius")
        nn_redundancy = shallow_nn / deep_nn
        radius_redundancy = shallow_r / deep_r
        assert nn_redundancy > radius_redundancy


class TestTraces:
    def test_trace_counts_match_stats(self, points, rng):
        tree = TwoStageKDTree(points, top_height=3)
        stats = SearchStats()
        traces = []
        for query in rng.normal(size=(10, 3)):
            tree.nn(query, stats, traces)
        assert len(traces) == 10
        assert sum(t.nodes_visited for t in traces) == stats.nodes_visited

    def test_trace_leaf_visits_have_valid_ids(self, points, rng):
        tree = TwoStageKDTree(points, top_height=3)
        traces = []
        tree.nn(rng.normal(size=3), trace=traces)
        for visit in traces[0].leaf_visits:
            assert 0 <= visit.leaf_id < tree.n_leaf_sets

    def test_pruned_leaf_visits_do_no_work(self, points, rng):
        tree = TwoStageKDTree(points, top_height=4)
        traces = []
        tree.nn_batch(rng.normal(size=(20, 3)), trace=traces)
        for trace in traces:
            for visit in trace.leaf_visits:
                if visit.pruned:
                    assert visit.scanned == 0
