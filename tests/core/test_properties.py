"""Property-based tests for the two-stage KD-tree and approximate search."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import ApproximateSearch, ApproximateSearchConfig, TwoStageKDTree
from repro.kdtree import SearchStats, bruteforce


@st.composite
def cloud_height_queries(draw):
    ndim = draw(st.integers(1, 4))
    n = draw(st.integers(1, 80))
    coarse = st.floats(-20, 20, allow_nan=False).map(lambda x: round(x, 1))
    points = draw(hnp.arrays(np.float64, (n, ndim), elements=coarse))
    height = draw(st.integers(0, 7))
    n_queries = draw(st.integers(1, 4))
    queries = draw(hnp.arrays(np.float64, (n_queries, ndim), elements=coarse))
    return points, height, queries


@given(data=cloud_height_queries())
def test_twostage_nn_exact_for_any_height(data):
    """Exact two-stage search must equal brute force at every height —
    the data structure changes work, never answers (paper Sec. 4.1)."""
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    for query in queries:
        _, dist = tree.nn(query)
        _, bf_dist = bruteforce.nn(points, query)
        assert np.isclose(dist, bf_dist, atol=1e-9)


@given(data=cloud_height_queries(), radius=st.floats(0, 15, allow_nan=False))
def test_twostage_radius_exact_for_any_height(data, radius):
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    for query in queries:
        indices, _ = tree.radius(query, radius)
        bf_indices, _ = bruteforce.radius(points, query, radius)
        assert set(indices.tolist()) == set(bf_indices.tolist())


@given(data=cloud_height_queries(), k=st.integers(1, 8))
def test_twostage_knn_exact_for_any_height(data, k):
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    for query in queries:
        _, dists = tree.knn(query, k)
        _, bf_dists = bruteforce.knn(points, query, k)
        assert np.allclose(dists, bf_dists, atol=1e-9)


@given(data=cloud_height_queries())
def test_leaf_sets_and_top_nodes_partition(data):
    """Every point lives in exactly one place: a top-tree node or one
    leaf set."""
    points, height, _ = data
    tree = TwoStageKDTree(points, top_height=height)
    members = [tree.leaf_set_indices(i) for i in range(tree.n_leaf_sets)]
    flat = np.concatenate(members) if members else np.empty(0, dtype=np.int64)
    assert len(flat) + tree.n_top_nodes == len(points)
    assert len(set(flat.tolist())) == len(flat)


@given(data=cloud_height_queries())
def test_trace_accounting_consistent(data):
    """Trace counters must agree with the stats accumulator exactly."""
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    stats = SearchStats()
    traces = []
    for query in queries:
        tree.nn(query, stats, traces)
    assert sum(t.nodes_visited for t in traces) == stats.nodes_visited
    assert sum(t.toptree_visits for t in traces) <= stats.traversal_steps


@given(
    data=cloud_height_queries(),
    radius=st.floats(0.1, 10, allow_nan=False),
    threshold_fraction=st.floats(0.0, 1.0),
)
@settings(max_examples=20)
def test_approx_radius_is_sound(data, radius, threshold_fraction):
    """Approximate radius results are always a *sound* subset: every
    returned point truly lies within the radius, for any threshold."""
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    search = ApproximateSearch(
        tree,
        ApproximateSearchConfig(radius_threshold_fraction=threshold_fraction),
    )
    for query in queries:
        indices, dists = search.radius(query, radius)
        assert np.all(dists <= radius + 1e-12)
        bf_indices, _ = bruteforce.radius(points, query, radius)
        assert set(indices.tolist()) <= set(bf_indices.tolist())


@given(data=cloud_height_queries(), capacity=st.integers(0, 8))
@settings(max_examples=20)
def test_leader_buffers_never_exceed_capacity(data, capacity):
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    search = ApproximateSearch(
        tree, ApproximateSearchConfig(leader_capacity=capacity)
    )
    for query in queries:
        search.nn(query)
    for leaf_id in range(tree.n_leaf_sets):
        assert search.leader_count(leaf_id) <= capacity


@given(data=cloud_height_queries())
@settings(max_examples=20)
def test_approx_never_does_more_work_per_follower(data):
    """A follower's leaf work (scan + checks) is bounded by the leaf
    set size plus the leader count — the paper's L + R <= N condition
    holds whenever the structure chose the follower path."""
    points, height, queries = data
    tree = TwoStageKDTree(points, top_height=height)
    search = ApproximateSearch(
        tree, ApproximateSearchConfig(nn_threshold=1e6)  # everyone follows
    )
    traces = []
    for query in queries:
        search.nn(query, trace=traces)
    sizes = tree.leaf_set_sizes
    for trace in traces:
        for visit in trace.leaf_visits:
            if visit.approximate:
                assert (
                    visit.scanned + visit.leader_checks
                    <= sizes[visit.leaf_id] + search.config.leader_capacity
                )
