"""The voxel-hash backend's approximation contract, pinned.

:mod:`repro.core.gridhash` promises exactly three things (module
docstring there): radius searches are bit-identical to brute force
whenever ``r <= cell_size`` and no candidate cap triggers; the
``max_candidates`` cap truncates a *radius-independent* candidate set
(so nested-radius filtering stays exact under the cap); and nn/knn are
always exact via expanding Chebyshev rings.  Everything the
registration layer builds on — parity suites, the reuse cache, the DSE
Pareto sweeps — assumes precisely these and nothing stronger.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gridhash import GridHashConfig, GridHashIndex
from repro.kdtree import bruteforce
from repro.kdtree.stats import SearchStats


def make_cloud(seed: int, n: int = 300, scale: float = 4.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    points = rng.uniform(-scale, scale, size=(n, 3))
    return np.vstack([points, points[:: max(1, n // 9)]])  # duplicates


def make_queries(seed: int, points: np.ndarray, n: int = 60) -> np.ndarray:
    rng = np.random.default_rng(seed + 1)
    near = points[rng.integers(0, len(points), size=n // 2)]
    near = near + rng.normal(size=near.shape) * 0.1
    far = rng.uniform(-7, 7, size=(n - len(near), 3))
    return np.vstack([near, far])


class TestExactMatchContract:
    @given(seed=st.integers(0, 2**32 - 1), r=st.sampled_from([0.0, 0.2, 0.7, 1.0]))
    @settings(max_examples=12, deadline=None)
    def test_radius_exact_up_to_cell_size(self, seed, r):
        """r <= cell_size: bit-identical to brute force, same order."""
        points = make_cloud(seed)
        queries = make_queries(seed, points)
        index = GridHashIndex(points, GridHashConfig(cell_size=1.0))
        for sort in (False, True):
            gi, gd = index.radius_batch(queries, r, sort=sort)
            bi, bd = bruteforce.radius_batch(points, queries, r, sort=sort)
            for a, b, c, d in zip(gi, bi, gd, bd):
                assert np.array_equal(a, b)
                assert np.array_equal(c, d)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_radius_beyond_cell_is_exact_subset(self, seed):
        """r > cell_size: may miss neighbors outside the probed 3^3
        cells, but never invents one, and keeps order and distances."""
        points = make_cloud(seed)
        queries = make_queries(seed, points)
        index = GridHashIndex(points, GridHashConfig(cell_size=0.5))
        gi, gd = index.radius_batch(queries, 1.4)
        bi, bd = bruteforce.radius_batch(points, queries, 1.4)
        missed = 0
        for a, b, c, d in zip(gi, bi, gd, bd):
            keep = np.isin(b, a)
            assert np.array_equal(a, b[keep])
            assert np.array_equal(c, d[keep])
            missed += len(b) - len(a)
        assert missed >= 0  # typically > 0; exactness is not promised here

    @given(seed=st.integers(0, 2**32 - 1), k=st.integers(1, 40))
    @settings(max_examples=12, deadline=None)
    def test_nn_knn_always_exact(self, seed, k):
        """Ring expansion with the strict-beat retirement rule: nn/knn
        match brute force bit for bit at any cell size, including ties."""
        points = make_cloud(seed)
        queries = make_queries(seed, points, n=30)
        for cell in (0.3, 1.0, 5.0):
            index = GridHashIndex(points, GridHashConfig(cell_size=cell))
            gi, gd = index.knn_batch(queries, k)
            bi, bd = bruteforce.knn_batch(points, queries, k)
            assert np.array_equal(gi, bi)
            assert np.array_equal(gd, bd)
            ni, nd = index.nn_batch(queries)
            assert np.array_equal(ni, bi[:, 0])
            assert np.array_equal(nd, bd[:, 0])

    def test_boundary_tie_defers_ring_retirement(self):
        """A neighbor at exactly m * cell_size in ring m + 1 with a
        smaller index must still win its distance tie."""
        # Query cell [0,1)^3; point A at distance exactly 1.0 inside
        # ring 1, point B at the same distance but in ring 2 (x = 2.0
        # is cell 2) with a smaller index.
        points = np.array(
            [
                [2.0, 0.0, 0.0],  # index 0: ring 2, distance 1.0
                [0.0, 1.0, 0.0],  # index 1: ring 1, distance 1.0
                [9.0, 9.0, 9.0],  # filler so the grid isn't tiny
            ]
        )
        index = GridHashIndex(points, GridHashConfig(cell_size=1.0))
        assert index.nn(np.array([1.0, 0.0, 0.0])) == (0, 1.0)


class TestCandidateCap:
    @given(seed=st.integers(0, 2**32 - 1), cap=st.integers(1, 40))
    @settings(max_examples=12, deadline=None)
    def test_cap_is_radius_independent(self, seed, cap):
        """The capped result at radius r equals the capped result at any
        larger radius filtered down to r — the reuse-cache contract."""
        points = make_cloud(seed)
        queries = make_queries(seed, points, n=40)
        index = GridHashIndex(
            points, GridHashConfig(cell_size=1.0, max_candidates=cap)
        )
        big_i, big_d = index.radius_batch(queries, 1.0)
        for r in (0.0, 0.3, 0.8):
            small_i, small_d = index.radius_batch(queries, r)
            for si, sd, bi, bd in zip(small_i, small_d, big_i, big_d):
                keep = bd <= r
                assert np.array_equal(si, bi[keep])
                assert np.array_equal(sd, bd[keep])

    def test_cap_bounds_work_and_results(self):
        points = make_cloud(3, n=500, scale=2.0)  # dense: many candidates
        queries = make_queries(3, points, n=25)
        capped = GridHashIndex(points, GridHashConfig(1.0, max_candidates=5))
        free = GridHashIndex(points, GridHashConfig(1.0))
        s_cap, s_free = SearchStats(), SearchStats()
        ci, _ = capped.radius_batch(queries, 1.0, s_cap)
        fi, _ = free.radius_batch(queries, 1.0, s_free)
        assert s_cap.nodes_visited <= 5 * len(queries)
        assert s_cap.nodes_visited < s_free.nodes_visited
        for a, b in zip(ci, fi):
            assert len(a) <= 5
            assert set(a.tolist()).issubset(set(b.tolist()))

    def test_cap_does_not_apply_to_knn(self):
        points = make_cloud(4, n=400, scale=2.0)
        capped = GridHashIndex(points, GridHashConfig(1.0, max_candidates=1))
        queries = make_queries(4, points, n=15)
        gi, gd = capped.knn_batch(queries, 8)
        bi, bd = bruteforce.knn_batch(points, queries, 8)
        assert np.array_equal(gi, bi)
        assert np.array_equal(gd, bd)


class TestStatsAndStructure:
    def test_batch_stats_equal_scalar_loop(self):
        points = make_cloud(6)
        queries = make_queries(6, points, n=30)
        index = GridHashIndex(points, GridHashConfig(cell_size=0.8))
        s_batch, s_loop = SearchStats(), SearchStats()
        index.radius_batch(queries, 0.8, s_batch)
        for q in queries:
            index.radius(q, 0.8, s_loop)
        assert s_batch == s_loop

    def test_counters_count_probes_and_distances(self):
        points = make_cloud(7)
        index = GridHashIndex(points, GridHashConfig(cell_size=1.0))
        stats = SearchStats()
        idx_lists, _ = index.radius_batch(points[:10], 1.0, stats)
        assert stats.queries == 10
        assert stats.traversal_steps == 10 * 27  # 3^3 probes per query
        assert stats.nodes_visited > 0
        assert stats.results_returned == sum(len(lst) for lst in idx_lists)

    def test_occupancy_and_validation(self):
        points = np.array([[0.0, 0.0, 0.0], [0.1, 0.1, 0.1], [5.0, 5.0, 5.0]])
        index = GridHashIndex(points, GridHashConfig(cell_size=1.0))
        assert index.n_occupied_cells == 2
        with pytest.raises(ValueError):
            GridHashIndex(np.empty((0, 3)))
        with pytest.raises(ValueError):
            GridHashConfig(cell_size=0.0)
        with pytest.raises(ValueError):
            GridHashConfig(cell_size=1.0, max_candidates=0)
        with pytest.raises(ValueError):
            index.radius(points[0], -1.0)
        with pytest.raises(ValueError):
            index.knn(points[0], 0)
        with pytest.raises(ValueError):
            GridHashIndex(points, GridHashConfig(cell_size=1e-18))
