"""Unit tests for the query-trace records."""

from repro.core import LeafVisitRecord, QueryTrace


class TestLeafVisitRecord:
    def test_defaults(self):
        visit = LeafVisitRecord(leaf_id=3)
        assert visit.leaf_id == 3
        assert visit.scanned == 0
        assert not visit.approximate
        assert not visit.pruned
        assert not visit.became_leader


class TestQueryTrace:
    def test_empty_trace_counts(self):
        trace = QueryTrace()
        assert trace.nodes_visited == 0
        assert trace.leaf_scanned == 0
        assert trace.leader_checks == 0
        assert trace.active_leaf_visits == []

    def test_aggregations(self):
        trace = QueryTrace(toptree_visits=5, toptree_bypassed=2, stack_pushes=9)
        trace.leaf_visits = [
            LeafVisitRecord(leaf_id=0, scanned=10, leader_checks=2),
            LeafVisitRecord(leaf_id=1, scanned=4),
            LeafVisitRecord(leaf_id=2, pruned=True),
        ]
        assert trace.leaf_scanned == 14
        assert trace.leader_checks == 2
        assert trace.nodes_visited == 5 + 14
        assert len(trace.active_leaf_visits) == 2

    def test_pruned_visits_excluded_from_active(self):
        trace = QueryTrace()
        trace.leaf_visits = [LeafVisitRecord(leaf_id=0, pruned=True)]
        assert trace.active_leaf_visits == []
        assert trace.nodes_visited == 0
