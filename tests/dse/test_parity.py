"""Cached/parallel exploration must be bit-identical to the seed path.

The shared-artifact explorer reorders *when* preprocessing happens
(once per (fingerprint, scene, frame) instead of twice per pair per
config) and, with ``workers > 1``, *where* (across processes).  Neither
may change what a configuration reports: errors, per-pair transforms,
ICP iteration counts, and per-pair search/stage stats are pinned
bitwise against the sequential seed path over two scenes and two
search backends — the ISSUE 3 acceptance gate.
"""

import numpy as np
import pytest

from repro.dse import FrameStateCache, explore
from repro.dse.explorer import _evaluate_group
from repro.io import SceneSuite, default_test_model
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    PipelineConfig,
    RPCEConfig,
    SearchConfig,
)

BACKENDS = ("twostage", "bruteforce")


def parity_config(
    backend: str, max_iterations: int, skip: bool = False
) -> PipelineConfig:
    return PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
        ),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=1.5), max_iterations=max_iterations
        ),
        search=SearchConfig(backend=backend),
        voxel_downsample=1.2,
        skip_initial_estimation=skip,
    )


@pytest.fixture(scope="module")
def suite() -> SceneSuite:
    """Two scenes (feature-rich outdoor + indoor), scaled-down scans."""
    return SceneSuite.default(
        n_frames=3,
        model=default_test_model(azimuth_steps=120, channels=12),
        scenes=("urban", "room"),
    )


@pytest.fixture(scope="module")
def configs() -> dict[str, PipelineConfig]:
    """Two backends x (two shared-front-end configs + one skip-initial).

    Per backend the three configs share one fingerprint (pairwise knobs
    and ``skip_initial_estimation`` are not front-end), so the cached
    path reuses each frame's artifacts across all three — including the
    mixed case of a feature-carrying state consumed by a config that
    never reads features.
    """
    named = {}
    for backend in BACKENDS:
        named[f"{backend}-short"] = parity_config(backend, 3)
        named[f"{backend}-long"] = parity_config(backend, 8)
        named[f"{backend}-skip"] = parity_config(backend, 3, skip=True)
    return named


@pytest.fixture(scope="module")
def seed_report(configs, suite):
    return explore(configs, suite, cached=False)


@pytest.fixture(scope="module")
def cached_report(configs, suite):
    return explore(configs, suite, cached=True)


@pytest.fixture(scope="module")
def parallel_report(configs, suite):
    return explore(configs, suite, cached=True, workers=2)


def assert_results_identical(reference, candidate):
    """Everything except wall-clock must match bitwise."""
    assert reference.name == candidate.name
    assert reference.scene == candidate.scene
    assert reference.translational_error == candidate.translational_error
    assert reference.rotational_error == candidate.rotational_error
    assert reference.detail["errors"] == candidate.detail["errors"]
    assert len(reference.detail["relatives"]) == len(candidate.detail["relatives"])
    for a, b in zip(reference.detail["relatives"], candidate.detail["relatives"]):
        assert np.array_equal(a, b)
    assert reference.detail["pair_stats"] == candidate.detail["pair_stats"]
    assert reference.detail["icp_iterations"] == candidate.detail["icp_iterations"]


def assert_reports_identical(reference, candidate):
    assert reference.scenes == candidate.scenes
    for scene in reference.scenes:
        ref_points = reference.scene_results[scene]
        cand_points = candidate.scene_results[scene]
        assert [r.name for r in ref_points] == [r.name for r in cand_points]
        for a, b in zip(ref_points, cand_points):
            assert_results_identical(a, b)


class TestCachedParity:
    def test_bit_identical_to_seed(self, seed_report, cached_report):
        assert_reports_identical(seed_report, cached_report)

    def test_aggregate_errors_match(self, seed_report, cached_report):
        for a, b in zip(seed_report.results, cached_report.results):
            assert a.name == b.name
            assert a.translational_error == b.translational_error
            assert a.rotational_error == b.rotational_error

    def test_profiler_accounting_matches_seed(self, seed_report, cached_report):
        """Shared preprocessing must be *attributed* per config exactly
        as the seed path spends it: same stage set, same call counts
        (interior frames charged to both consuming pairs)."""
        for scene in seed_report.scenes:
            for a, b in zip(
                seed_report.scene_results[scene],
                cached_report.scene_results[scene],
            ):
                seed_stages = a.detail["profiler"].stages
                cached_stages = b.detail["profiler"].stages
                assert set(seed_stages) == set(cached_stages)
                for stage, timing in seed_stages.items():
                    assert timing.calls == cached_stages[stage].calls, (
                        a.name,
                        stage,
                    )


class TestParallelParity:
    def test_bit_identical_to_seed(self, seed_report, parallel_report):
        assert_reports_identical(seed_report, parallel_report)

    def test_worker_count_does_not_change_results(
        self, configs, suite, parallel_report
    ):
        four = explore(configs, suite, cached=True, workers=4)
        assert_reports_identical(parallel_report, four)


class TestFrameStateCache:
    def test_hit_miss_accounting(self):
        cache = FrameStateCache()
        builds = []
        for _ in range(3):
            cache.get(("fp", "urban", 0), lambda: builds.append(1) or ("s", "p"))
        assert cache.misses == 1
        assert cache.hits == 2
        assert len(builds) == 1
        assert len(cache) == 1

    def test_group_reuses_states_across_calls(self, suite):
        """A second evaluation of the same fingerprint/scene reuses the
        cached FrameStates (object identity, zero extra preprocesses)."""
        sequence = suite.sequence("urban")
        named = {"short": parity_config("twostage", 3)}
        cache = FrameStateCache()
        first = _evaluate_group(named, sequence, "urban", None, cache)
        misses_after_first = cache.misses
        second = _evaluate_group(named, sequence, "urban", None, cache)
        assert cache.misses == misses_after_first
        assert cache.hits == misses_after_first
        assert_results_identical(first[0], second[0])
