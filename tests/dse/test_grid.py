"""Unit tests for the parametric sweep grid."""

import pytest

from repro.dse import SweepSpec, default_sweep, parameter_grid
from repro.registration import PipelineConfig


class TestSweepSpec:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep knob"):
            SweepSpec(bogus_knob=[1, 2])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(normal_radius=[])

    def test_default_sweep_is_valid(self):
        spec = default_sweep()
        assert len(spec) == 3


class TestParameterGrid:
    def test_cartesian_product_size(self):
        spec = SweepSpec(
            normal_radius=[0.3, 0.6], icp_max_iterations=[5, 10, 20]
        )
        points = list(parameter_grid(spec))
        assert len(points) == 6

    def test_configs_reflect_assignment(self):
        spec = SweepSpec(normal_radius=[0.3, 0.9])
        configs = dict(parameter_grid(spec))
        radii = sorted(c.normals.radius for c in configs.values())
        assert radii == [0.3, 0.9]

    def test_names_are_unique_and_traceable(self):
        points = list(parameter_grid(default_sweep()))
        names = [name for name, _ in points]
        assert len(set(names)) == len(names)
        assert all("nr=" in name and "em=" in name for name in names)

    def test_all_configs_valid(self):
        for _, config in parameter_grid(default_sweep()):
            assert isinstance(config, PipelineConfig)
            assert config.icp.max_iterations in (8, 20)

    def test_algorithmic_knobs(self):
        spec = SweepSpec(
            keypoint_method=["uniform", "harris"],
            descriptor_method=["fpfh", "shot"],
            rejection_method=["threshold", "ransac"],
        )
        points = list(parameter_grid(spec))
        assert len(points) == 8
        methods = {c.keypoints.method for _, c in points}
        assert methods == {"uniform", "harris"}
