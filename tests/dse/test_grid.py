"""Unit tests for the parametric sweep grid."""

import pytest

from repro.dse import SweepSpec, default_sweep, fingerprint_groups, parameter_grid
from repro.registration import PipelineConfig


class TestSweepSpec:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep knob"):
            SweepSpec(bogus_knob=[1, 2])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(normal_radius=[])

    def test_default_sweep_is_valid(self):
        spec = default_sweep()
        assert len(spec) == 3


class TestParameterGrid:
    def test_cartesian_product_size(self):
        spec = SweepSpec(
            normal_radius=[0.3, 0.6], icp_max_iterations=[5, 10, 20]
        )
        points = list(parameter_grid(spec))
        assert len(points) == 6

    def test_configs_reflect_assignment(self):
        spec = SweepSpec(normal_radius=[0.3, 0.9])
        configs = dict(parameter_grid(spec))
        radii = sorted(c.normals.radius for c in configs.values())
        assert radii == [0.3, 0.9]

    def test_names_are_unique_and_traceable(self):
        points = list(parameter_grid(default_sweep()))
        names = [name for name, _ in points]
        assert len(set(names)) == len(names)
        assert all("nr=" in name and "em=" in name for name in names)

    def test_all_configs_valid(self):
        for _, config in parameter_grid(default_sweep()):
            assert isinstance(config, PipelineConfig)
            assert config.icp.max_iterations in (8, 20)

    def test_algorithmic_knobs(self):
        spec = SweepSpec(
            keypoint_method=["uniform", "harris"],
            descriptor_method=["fpfh", "shot"],
            rejection_method=["threshold", "ransac"],
        )
        points = list(parameter_grid(spec))
        assert len(points) == 8
        methods = {c.keypoints.method for _, c in points}
        assert methods == {"uniform", "harris"}

    def test_naming_is_deterministic(self):
        """Two expansions of the same spec yield identical names in
        identical order — DSE results stay traceable across runs."""
        spec = SweepSpec(normal_radius=[0.3, 0.6], icp_max_iterations=[5, 10])
        first = [name for name, _ in parameter_grid(spec)]
        second = [name for name, _ in parameter_grid(spec)]
        assert first == second
        assert len(set(first)) == len(first)


class TestFingerprintGroups:
    def test_default_sweep_groups_by_frontend(self):
        """The default sweep varies one front-end knob (normal_radius,
        2 values) and two pairwise knobs — 8 configs, 2 groups of 4."""
        configs = dict(parameter_grid(default_sweep()))
        groups = fingerprint_groups(configs)
        assert len(configs) == 8
        assert len(groups) == 2
        assert sorted(len(g) for g in groups.values()) == [4, 4]
        regrouped = [name for group in groups.values() for name in group]
        assert sorted(regrouped) == sorted(configs)

    def test_frontend_knob_splits_groups(self):
        spec = SweepSpec(
            descriptor_radius=[0.8, 1.0, 1.2], icp_max_iterations=[5, 10]
        )
        groups = fingerprint_groups(dict(parameter_grid(spec)))
        assert len(groups) == 3
        assert all(len(g) == 2 for g in groups.values())

    def test_identical_configs_share_fingerprint(self):
        a = PipelineConfig()
        b = PipelineConfig()
        assert a.frontend_fingerprint() == b.frontend_fingerprint()
        groups = fingerprint_groups({"a": a, "b": b})
        assert len(groups) == 1

    def test_pairwise_knobs_do_not_split(self):
        from repro.registration import ICPConfig

        a = PipelineConfig(icp=ICPConfig(max_iterations=5))
        b = PipelineConfig(icp=ICPConfig(max_iterations=50))
        assert a.frontend_fingerprint() == b.frontend_fingerprint()

    def test_frontend_injector_isolates_config(self):
        class FakeInjector:
            pass

        injector = FakeInjector()
        plain = PipelineConfig()
        with_injector = PipelineConfig(
            injectors={"Normal Estimation": injector}
        )
        same_injector = PipelineConfig(
            injectors={"Normal Estimation": injector}
        )
        assert plain.frontend_fingerprint() != with_injector.frontend_fingerprint()
        assert (
            with_injector.frontend_fingerprint()
            == same_injector.frontend_fingerprint()
        )

    def test_pairwise_injector_does_not_split(self):
        class FakeInjector:
            pass

        a = PipelineConfig(injectors={"RPCE": FakeInjector()})
        b = PipelineConfig(injectors={"RPCE": FakeInjector()})
        assert a.frontend_fingerprint() == b.frontend_fingerprint()
