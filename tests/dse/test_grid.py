"""Unit tests for the parametric sweep grid."""

import numpy as np
import pytest

from repro.dse import SweepSpec, default_sweep, fingerprint_groups, parameter_grid
from repro.registration import PipelineConfig


class TestSweepSpec:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep knob"):
            SweepSpec(bogus_knob=[1, 2])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(normal_radius=[])

    def test_default_sweep_is_valid(self):
        spec = default_sweep()
        assert len(spec) == 3


class TestParameterGrid:
    def test_cartesian_product_size(self):
        spec = SweepSpec(
            normal_radius=[0.3, 0.6], icp_max_iterations=[5, 10, 20]
        )
        points = list(parameter_grid(spec))
        assert len(points) == 6

    def test_configs_reflect_assignment(self):
        spec = SweepSpec(normal_radius=[0.3, 0.9])
        configs = dict(parameter_grid(spec))
        radii = sorted(c.normals.radius for c in configs.values())
        assert radii == [0.3, 0.9]

    def test_names_are_unique_and_traceable(self):
        points = list(parameter_grid(default_sweep()))
        names = [name for name, _ in points]
        assert len(set(names)) == len(names)
        assert all("nr=" in name and "em=" in name for name in names)

    def test_all_configs_valid(self):
        for _, config in parameter_grid(default_sweep()):
            assert isinstance(config, PipelineConfig)
            assert config.icp.max_iterations in (8, 20)

    def test_algorithmic_knobs(self):
        spec = SweepSpec(
            keypoint_method=["uniform", "harris"],
            descriptor_method=["fpfh", "shot"],
            rejection_method=["threshold", "ransac"],
        )
        points = list(parameter_grid(spec))
        assert len(points) == 8
        methods = {c.keypoints.method for _, c in points}
        assert methods == {"uniform", "harris"}

    def test_naming_is_deterministic(self):
        """Two expansions of the same spec yield identical names in
        identical order — DSE results stay traceable across runs."""
        spec = SweepSpec(normal_radius=[0.3, 0.6], icp_max_iterations=[5, 10])
        first = [name for name, _ in parameter_grid(spec)]
        second = [name for name, _ in parameter_grid(spec)]
        assert first == second
        assert len(set(first)) == len(first)


class TestFingerprintGroups:
    def test_default_sweep_groups_by_frontend(self):
        """The default sweep varies one front-end knob (normal_radius,
        2 values) and two pairwise knobs — 8 configs, 2 groups of 4."""
        configs = dict(parameter_grid(default_sweep()))
        groups = fingerprint_groups(configs)
        assert len(configs) == 8
        assert len(groups) == 2
        assert sorted(len(g) for g in groups.values()) == [4, 4]
        regrouped = [name for group in groups.values() for name in group]
        assert sorted(regrouped) == sorted(configs)

    def test_frontend_knob_splits_groups(self):
        spec = SweepSpec(
            descriptor_radius=[0.8, 1.0, 1.2], icp_max_iterations=[5, 10]
        )
        groups = fingerprint_groups(dict(parameter_grid(spec)))
        assert len(groups) == 3
        assert all(len(g) == 2 for g in groups.values())

    def test_identical_configs_share_fingerprint(self):
        a = PipelineConfig()
        b = PipelineConfig()
        assert a.frontend_fingerprint() == b.frontend_fingerprint()
        groups = fingerprint_groups({"a": a, "b": b})
        assert len(groups) == 1

    def test_pairwise_knobs_do_not_split(self):
        from repro.registration import ICPConfig

        a = PipelineConfig(icp=ICPConfig(max_iterations=5))
        b = PipelineConfig(icp=ICPConfig(max_iterations=50))
        assert a.frontend_fingerprint() == b.frontend_fingerprint()

    def test_frontend_injector_isolates_config(self):
        class FakeInjector:
            pass

        injector = FakeInjector()
        plain = PipelineConfig()
        with_injector = PipelineConfig(
            injectors={"Normal Estimation": injector}
        )
        same_injector = PipelineConfig(
            injectors={"Normal Estimation": injector}
        )
        assert plain.frontend_fingerprint() != with_injector.frontend_fingerprint()
        assert (
            with_injector.frontend_fingerprint()
            == same_injector.frontend_fingerprint()
        )

    def test_pairwise_injector_does_not_split(self):
        class FakeInjector:
            pass

        a = PipelineConfig(injectors={"RPCE": FakeInjector()})
        b = PipelineConfig(injectors={"RPCE": FakeInjector()})
        assert a.frontend_fingerprint() == b.frontend_fingerprint()


class TestGridHashKnobs:
    """The voxel-hash backend as a swept design axis (cell size and
    candidate cap), through the grid, the fingerprints, and a real
    exploration with Pareto extraction."""

    def test_knobs_expand_and_trace(self):
        spec = SweepSpec(
            search_backend=["gridhash"],
            search_gridhash_cell=[0.5, 1.0],
            search_gridhash_max_candidates=[None, 32],
        )
        points = list(parameter_grid(spec))
        assert len(points) == 4
        for name, config in points:
            assert "gc=" in name and "gm=" in name and "sb=gridhash" in name
            assert config.search.backend == "gridhash"
        cells = sorted(
            {c.search.gridhash.cell_size for _, c in points}
        )
        caps = {c.search.gridhash.max_candidates for _, c in points}
        assert cells == [0.5, 1.0]
        assert caps == {None, 32}

    def test_gridhash_knobs_split_fingerprints(self):
        spec = SweepSpec(
            search_backend=["gridhash"],
            search_gridhash_cell=[0.5, 1.0, 2.0],
        )
        groups = fingerprint_groups(dict(parameter_grid(spec)))
        assert len(groups) == 3

    def test_explore_places_gridhash_on_the_map(self, lidar_sequence):
        """Gridhash design points evaluate end to end and enter the
        Pareto machinery alongside the tree backends."""
        from repro.dse import explore, pareto_frontier
        from repro.registration import ICPConfig, KeypointConfig, RPCEConfig
        from repro.registration.search import SearchConfig
        from repro.core.gridhash import GridHashConfig

        def config(backend, cell=1.0):
            return PipelineConfig(
                keypoints=KeypointConfig(
                    method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
                ),
                icp=ICPConfig(
                    rpce=RPCEConfig(max_distance=1.5), max_iterations=5
                ),
                voxel_downsample=1.2,
                skip_initial_estimation=True,
                search=SearchConfig(
                    backend=backend, gridhash=GridHashConfig(cell_size=cell)
                ),
            )

        configs = {
            "twostage": config("twostage"),
            "gridhash-1.0": config("gridhash", 1.0),
            "gridhash-2.0": config("gridhash", 2.0),
        }
        report = explore(configs, lidar_sequence, max_pairs=1)
        by_name = {r.name: r for r in report.results}
        assert set(by_name) == set(configs)
        for result in report.results:
            assert np.isfinite(result.time) and result.time > 0
            assert np.isfinite(result.translational_error)
        frontier = pareto_frontier(report.results)
        assert frontier  # non-empty, and every member is a real result
        assert {r.name for r in frontier} <= set(configs)
