"""Unit + property tests for Pareto-frontier extraction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dse import DesignPointResult, is_dominated, pareto_frontier


def point(name, time, trans, rot=0.0):
    return DesignPointResult(
        name=name, time=time, translational_error=trans, rotational_error=rot
    )


class TestDomination:
    def test_strictly_better_dominates(self):
        a = point("a", 1.0, 0.1)
        b = point("b", 2.0, 0.2)
        assert is_dominated(b, [a, b])
        assert not is_dominated(a, [a, b])

    def test_tradeoff_points_coexist(self):
        fast_bad = point("fast", 1.0, 0.5)
        slow_good = point("slow", 5.0, 0.1)
        assert not is_dominated(fast_bad, [fast_bad, slow_good])
        assert not is_dominated(slow_good, [fast_bad, slow_good])

    def test_equal_points_do_not_dominate(self):
        a = point("a", 1.0, 0.1)
        b = point("b", 1.0, 0.1)
        assert not is_dominated(a, [a, b])
        assert not is_dominated(b, [a, b])


class TestFrontier:
    def test_known_frontier(self):
        results = [
            point("a", 1.0, 0.5),
            point("b", 2.0, 0.3),
            point("c", 3.0, 0.4),  # dominated by b
            point("d", 4.0, 0.1),
        ]
        frontier = pareto_frontier(results)
        assert [r.name for r in frontier] == ["a", "b", "d"]

    def test_sorted_by_time(self):
        results = [point("a", 3.0, 0.1), point("b", 1.0, 0.5)]
        frontier = pareto_frontier(results)
        assert frontier[0].time <= frontier[1].time

    def test_different_axes_different_frontiers(self):
        results = [
            point("a", 1.0, trans=0.5, rot=0.01),
            point("b", 2.0, trans=0.1, rot=0.5),
        ]
        trans_frontier = pareto_frontier(results, "translational_error")
        rot_frontier = pareto_frontier(results, "rotational_error")
        assert {r.name for r in trans_frontier} == {"a", "b"}
        assert {r.name for r in rot_frontier} == {"a"}

    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_invalid_time_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([point("a", -1.0, 0.1)])
        with pytest.raises(ValueError):
            pareto_frontier([point("a", np.nan, 0.1)])

    @given(
        times=st.lists(st.floats(0.01, 100, allow_nan=False), min_size=1, max_size=30),
        errors=st.lists(st.floats(0.0, 10, allow_nan=False), min_size=1, max_size=30),
    )
    def test_frontier_properties(self, times, errors):
        n = min(len(times), len(errors))
        results = [point(f"p{i}", times[i], errors[i]) for i in range(n)]
        frontier = pareto_frontier(results)
        # Non-empty: the minimum-error point is never dominated.
        assert len(frontier) >= 1
        # No frontier point dominates another frontier point.
        for candidate in frontier:
            assert not is_dominated(candidate, frontier)
        # Along the frontier, time increases and error decreases.
        for first, second in zip(frontier, frontier[1:]):
            assert first.time <= second.time
            assert first.translational_error >= second.translational_error
