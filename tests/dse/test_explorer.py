"""Tests for the DSE driver (kept small: two cheap configs, one pair)."""

import pytest

from repro.dse import ExplorationReport, evaluate_config, explore
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    PipelineConfig,
    RPCEConfig,
)


def cheap_config(max_iterations: int) -> PipelineConfig:
    return PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
        ),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=1.5), max_iterations=max_iterations
        ),
        voxel_downsample=1.2,
        skip_initial_estimation=True,
    )


class TestEvaluateConfig:
    def test_result_fields(self, lidar_sequence):
        result = evaluate_config(
            "quick", cheap_config(5), lidar_sequence, max_pairs=1
        )
        assert result.name == "quick"
        assert result.time > 0
        assert result.translational_error >= 0
        assert result.rotational_error >= 0
        assert "profiler" in result.detail
        assert "kdtree_fractions" in result.detail

    def test_stage_fractions_sum_to_one(self, lidar_sequence):
        result = evaluate_config(
            "quick", cheap_config(3), lidar_sequence, max_pairs=1
        )
        total = sum(result.detail["stage_fractions"].values())
        assert total == pytest.approx(1.0)

    def test_more_iterations_cost_more_time(self, lidar_sequence):
        fast = evaluate_config("fast", cheap_config(2), lidar_sequence, max_pairs=1)
        slow = evaluate_config("slow", cheap_config(20), lidar_sequence, max_pairs=1)
        assert slow.time > fast.time


class TestExplore:
    def test_report_structure(self, lidar_sequence):
        report = explore(
            {"fast": cheap_config(2), "slow": cheap_config(10)},
            lidar_sequence,
            max_pairs=1,
        )
        assert isinstance(report, ExplorationReport)
        assert len(report.results) == 2
        assert 1 <= len(report.translational_frontier) <= 2
        assert 1 <= len(report.rotational_frontier) <= 2

    def test_summary_mentions_all(self, lidar_sequence):
        report = explore(
            {"fast": cheap_config(2), "slow": cheap_config(10)},
            lidar_sequence,
            max_pairs=1,
        )
        text = report.summary()
        assert "fast" in text
        assert "slow" in text
