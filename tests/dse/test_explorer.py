"""Tests for the DSE driver (kept small: two cheap configs, one pair)."""

import numpy as np
import pytest

from repro.dse import DesignPointResult, ExplorationReport, evaluate_config, explore
from repro.io import SceneSuite, default_test_model
from repro.registration import (
    ICPConfig,
    KeypointConfig,
    PipelineConfig,
    RPCEConfig,
)


def cheap_config(max_iterations: int) -> PipelineConfig:
    return PipelineConfig(
        keypoints=KeypointConfig(
            method="uniform", params={"voxel_size": 3.0}, min_keypoints=8
        ),
        icp=ICPConfig(
            rpce=RPCEConfig(max_distance=1.5), max_iterations=max_iterations
        ),
        voxel_downsample=1.2,
        skip_initial_estimation=True,
    )


class TestEvaluateConfig:
    def test_result_fields(self, lidar_sequence):
        result = evaluate_config(
            "quick", cheap_config(5), lidar_sequence, max_pairs=1
        )
        assert result.name == "quick"
        assert result.time > 0
        assert result.translational_error >= 0
        assert result.rotational_error >= 0
        assert "profiler" in result.detail
        assert "kdtree_fractions" in result.detail

    def test_stage_fractions_sum_to_one(self, lidar_sequence):
        result = evaluate_config(
            "quick", cheap_config(3), lidar_sequence, max_pairs=1
        )
        total = sum(result.detail["stage_fractions"].values())
        assert total == pytest.approx(1.0)

    def test_more_iterations_cost_more_time(self, lidar_sequence):
        fast = evaluate_config("fast", cheap_config(2), lidar_sequence, max_pairs=1)
        slow = evaluate_config("slow", cheap_config(20), lidar_sequence, max_pairs=1)
        assert slow.time > fast.time


class TestExplore:
    def test_report_structure(self, lidar_sequence):
        report = explore(
            {"fast": cheap_config(2), "slow": cheap_config(10)},
            lidar_sequence,
            max_pairs=1,
        )
        assert isinstance(report, ExplorationReport)
        assert len(report.results) == 2
        assert 1 <= len(report.translational_frontier) <= 2
        assert 1 <= len(report.rotational_frontier) <= 2

    def test_summary_mentions_all(self, lidar_sequence):
        report = explore(
            {"fast": cheap_config(2), "slow": cheap_config(10)},
            lidar_sequence,
            max_pairs=1,
        )
        text = report.summary()
        assert "fast" in text
        assert "slow" in text

    def test_detail_carries_parity_material(self, lidar_sequence):
        report = explore({"fast": cheap_config(2)}, lidar_sequence, max_pairs=1)
        detail = report.results[0].detail
        assert len(detail["relatives"]) == 1
        assert detail["relatives"][0].shape == (4, 4)
        assert len(detail["pair_stats"]) == 1
        assert detail["icp_iterations"][0] >= 1

    def test_uncached_matches_default(self, lidar_sequence):
        configs = {"fast": cheap_config(2), "slow": cheap_config(10)}
        cached = explore(configs, lidar_sequence, max_pairs=1)
        uncached = explore(configs, lidar_sequence, max_pairs=1, cached=False)
        for a, b in zip(cached.results, uncached.results):
            assert a.name == b.name
            assert a.translational_error == b.translational_error
            assert a.rotational_error == b.rotational_error


class TestMultiScene:
    @pytest.fixture(scope="class")
    def report(self):
        suite = SceneSuite.default(
            n_frames=3,
            model=default_test_model(azimuth_steps=100, channels=10),
            scenes=("urban", "room"),
        )
        return explore(
            {"fast": cheap_config(2), "slow": cheap_config(10)}, suite
        )

    def test_per_scene_results(self, report):
        assert report.scenes == ("urban", "room")
        for scene, results in report.scene_results.items():
            assert [r.name for r in results] == ["fast", "slow"]
            assert all(r.scene == scene for r in results)

    def test_aggregate_is_cross_scene_mean(self, report):
        for aggregate in report.results:
            members = aggregate.detail["per_scene"]
            assert set(members) == {"urban", "room"}
            assert aggregate.translational_error == pytest.approx(
                np.mean([m.translational_error for m in members.values()])
            )
            assert aggregate.time == pytest.approx(
                np.mean([m.time for m in members.values()])
            )
            assert aggregate.scene is None

    def test_per_scene_frontiers(self, report):
        for scene in report.scenes:
            frontiers = report.scene_frontiers[scene]
            assert 1 <= len(frontiers["translational"]) <= 2
            assert 1 <= len(frontiers["rotational"]) <= 2
            assert all(
                any(f is r for r in report.scene_results[scene])
                for f in frontiers["translational"]
            )

    def test_scene_summary_table(self, report):
        table = report.scene_summary()
        assert "urban" in table
        assert "room" in table
        assert "aggregate" in table
        assert "fast" in table and "slow" in table

    def test_dict_of_scenes_accepted(self, lidar_sequence):
        report = explore(
            {"fast": cheap_config(2)},
            {"only": lidar_sequence},
            max_pairs=1,
        )
        assert report.scenes == ("only",)
        # A single scene is reported directly, not wrapped in aggregates.
        assert report.results[0] is report.scene_results["only"][0]


class TestExploreTelemetry:
    def configs(self):
        return {"fast": cheap_config(2), "slow": cheap_config(10)}

    def explore_traced(self, lidar_sequence, workers: int):
        from repro.telemetry import Tracer

        tracer = Tracer()
        report = explore(
            self.configs(),
            lidar_sequence,
            max_pairs=1,
            workers=workers,
            tracer=tracer,
        )
        return tracer, report

    def test_single_explore_root_with_group_subtrees(self, lidar_sequence):
        tracer, _ = self.explore_traced(lidar_sequence, workers=1)
        assert [root.name for root in tracer.roots] == ["explore"]
        explore_span = tracer.roots[0]
        groups = [c for c in explore_span.children if c.name == "group"]
        assert len(groups) == explore_span.args["n_groups"]
        names = {span.name for span in explore_span.walk()}
        assert {"explore", "group", "config", "pair", "match"} <= names

    def test_inprocess_groups_stay_on_main_track(self, lidar_sequence):
        tracer, _ = self.explore_traced(lidar_sequence, workers=1)
        assert all(
            span.track is None for span in tracer.roots[0].walk()
        )

    def test_workers_merge_into_one_parent_trace(self, lidar_sequence):
        tracer, traced_report = self.explore_traced(lidar_sequence, workers=2)
        # Still one root: every worker shard adopted under "explore".
        assert [root.name for root in tracer.roots] == ["explore"]
        explore_span = tracer.roots[0]
        groups = [c for c in explore_span.children if c.name == "group"]
        assert len(groups) == explore_span.args["n_groups"]
        # Worker subtrees carry their origin pid on every span.
        for group in groups:
            tracks = {span.track for span in group.walk()}
            assert len(tracks) == 1
            assert tracks != {None}
        # Tracing a sharded run must not perturb the results.
        reference = explore(self.configs(), lidar_sequence, max_pairs=1)
        for ours, ref in zip(traced_report.results, reference.results):
            assert ours.name == ref.name
            assert ours.translational_error == ref.translational_error
            assert ours.rotational_error == ref.rotational_error

    def test_counters_fold_across_workers(self, lidar_sequence):
        tracer, _ = self.explore_traced(lidar_sequence, workers=2)
        assert tracer.counters.get("queries") > 0
        assert tracer.counters.get("nodes_visited") > 0


class TestFrontierTags:
    def ndarray_point(self, name, time, err):
        """Equal scalar fields + ndarray-laden detail: dataclass ``==``
        on these raises, so summary() must tag by identity."""
        return DesignPointResult(
            name=name,
            time=time,
            translational_error=err,
            rotational_error=err,
            detail={"relatives": [np.eye(4)]},
        )

    def test_summary_tags_by_identity(self):
        twin_a = self.ndarray_point("twin", 1.0, 0.1)
        twin_b = self.ndarray_point("twin", 1.0, 0.1)
        dominated = self.ndarray_point("worse", 2.0, 0.2)
        report = ExplorationReport(results=[twin_a, twin_b, dominated])
        text = report.summary()
        lines = [line for line in text.splitlines() if "worse" in line]
        assert len(lines) == 1
        assert "T" not in lines[0].replace("worse", "")
        assert sum("T" in li.replace("twin", "") for li in text.splitlines()) == 2
