"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based tests fast and deterministic enough for CI while
# still exploring: 25 examples per property, no per-example deadline
# (tree builds can be slow on pathological draws).
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def lidar_pair():
    """A cached consecutive LiDAR frame pair with ground truth.

    Session-scoped: frame synthesis costs ~50 ms but is reused by many
    registration and accelerator tests.
    """
    from repro.io import make_sequence

    sequence = make_sequence(n_frames=2, seed=3)
    return sequence.pair(0)


@pytest.fixture(scope="session")
def lidar_sequence():
    """A short cached synthetic sequence (4 frames)."""
    from repro.io import make_sequence

    return make_sequence(n_frames=4, seed=7)


@pytest.fixture(scope="session")
def cloud_with_normals():
    """A LiDAR frame with normals/curvature attached (cached)."""
    from repro.io import make_sequence
    from repro.registration import (
        NormalEstimationConfig,
        SearchConfig,
        build_searcher,
        estimate_normals,
    )

    sequence = make_sequence(n_frames=1, seed=11)
    cloud = sequence.frames[0]
    searcher = build_searcher(cloud.points, SearchConfig())
    return estimate_normals(cloud, searcher, NormalEstimationConfig(radius=0.6))
