"""Install metadata for the Tigris reproduction package.

There is no pyproject.toml on purpose: the target environments are
offline containers where ``pip install -e .`` must work with whatever
setuptools is baked in, without a PEP 517 build front end fetching
anything.  Keep the dependency list in sync with the CI workflow
(.github/workflows/ci.yml), which installs the same packages directly.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Tigris-style 3D point-cloud registration: "
        "streaming odometry, loop-closing SLAM, and a sparse "
        "incremental pose-graph back end"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",  # sparse normal equations in repro.mapping.pose_graph
    ],
)
