"""Setup shim for legacy editable installs (offline environments).

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works with older setuptools/pip without network
access to a PEP 517 build environment.
"""

from setuptools import setup

setup()
