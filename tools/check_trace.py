"""Validate an exported Chrome trace-event JSON file.

CI runs the mapping bench with ``--trace`` and feeds the result here
(see ``.github/workflows/ci.yml``); the checks are exactly the
invariants the telemetry layer promises:

1. **Well-formed**: the file is JSON with a ``traceEvents`` list, and
   every event carries the required keys for its phase.
2. **Balanced nesting**: per ``(pid, tid)`` track, ``B``/``E`` events
   form a properly nested stack — every begin has a matching end with
   the same name, timestamps are monotonically consistent (an ``E``
   never precedes its ``B``), and nothing is left open at the end.
3. **Shim agreement**: when the file embeds ``profilerTotals`` (stage
   name -> seconds from the StageProfiler table), the summed duration
   of the trace's ``cat == "stage"`` spans per stage must match within
   ``--tolerance`` (default 1%) — the span tree and the legacy
   profiler are two views of the same measurement, not two
   measurements.

Exit status is 0 when every check passes, 1 with a per-failure report
otherwise.

Run:  python tools/check_trace.py trace.json [--tolerance 0.01]
"""

from __future__ import annotations

import argparse
import json
import sys

STAGE_CATEGORY = "stage"


def check_trace(payload: dict, tolerance: float = 0.01) -> list[str]:
    """All violated invariants of an exported Chrome trace (empty = pass)."""
    failures: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    if not events:
        failures.append("traceEvents is empty")

    # Balanced B/E per (pid, tid) track, with per-stage duration sums.
    stacks: dict[tuple, list] = {}
    stage_totals: dict[str, float] = {}
    for position, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ("B", "E", "M"):
            failures.append(f"event {position}: unknown phase {phase!r}")
            continue
        if "pid" not in event or "tid" not in event:
            failures.append(f"event {position}: missing pid/tid")
            continue
        if phase == "M":
            continue
        name = event.get("name")
        ts = event.get("ts")
        if name is None or not isinstance(ts, (int, float)):
            failures.append(f"event {position}: B/E event needs name and ts")
            continue
        key = (event["pid"], event["tid"])
        stack = stacks.setdefault(key, [])
        if phase == "B":
            stack.append((name, ts, event.get("cat")))
        else:
            if not stack:
                failures.append(
                    f"event {position}: E {name!r} with empty stack on {key}"
                )
                continue
            open_name, open_ts, category = stack.pop()
            if open_name != name:
                failures.append(
                    f"event {position}: E {name!r} closes B {open_name!r} "
                    f"on {key}"
                )
                continue
            if ts < open_ts:
                failures.append(
                    f"event {position}: {name!r} ends at {ts} before its "
                    f"begin at {open_ts}"
                )
                continue
            if category == STAGE_CATEGORY:
                stage_totals[name] = stage_totals.get(name, 0.0) + (
                    (ts - open_ts) / 1e6
                )
    for key, stack in stacks.items():
        if stack:
            failures.append(
                f"track {key}: {len(stack)} span(s) left open "
                f"({', '.join(repr(name) for name, _, _ in stack)})"
            )

    # Span totals vs the embedded StageProfiler table.
    profiler_totals = payload.get("profilerTotals")
    if profiler_totals is not None:
        for stage, recorded in profiler_totals.items():
            traced = stage_totals.get(stage)
            if traced is None:
                failures.append(
                    f"stage {stage!r} in profilerTotals but has no "
                    f"stage span in the trace"
                )
                continue
            if recorded == 0.0:
                if traced > tolerance:
                    failures.append(
                        f"stage {stage!r}: traced {traced:.6f}s vs "
                        f"recorded 0s"
                    )
                continue
            relative = abs(traced - recorded) / recorded
            if relative > tolerance:
                failures.append(
                    f"stage {stage!r}: traced {traced:.6f}s vs recorded "
                    f"{recorded:.6f}s ({100 * relative:.2f}% off, "
                    f"tolerance {100 * tolerance:.0f}%)"
                )
        extra = set(stage_totals) - set(profiler_totals)
        if extra:
            failures.append(
                f"stage spans missing from profilerTotals: {sorted(extra)}"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file to check")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.01,
        help="max relative stage-total deviation vs profilerTotals",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot read {args.trace}: {error}")
        return 1

    failures = check_trace(payload, tolerance=args.tolerance)
    n_events = len(payload.get("traceEvents", []))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    n_stages = len(payload.get("profilerTotals", {}) or {})
    print(
        f"OK: {args.trace} — {n_events} events, balanced B/E on every "
        f"track, {n_stages} stage total(s) within tolerance"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
